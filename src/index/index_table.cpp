#include "index/index_table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hdsm::idx {

namespace {

using tags::FlatRun;
using tags::TypeDesc;

std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}

class RowBuilder {
 public:
  explicit RowBuilder(const plat::PlatformDesc& p) : p_(p) {}

  /// Emit rows for one member at `offset` (no trailing padding row).
  void member(const TypeDesc& t, std::uint64_t offset) {
    switch (t.kind()) {
      case TypeDesc::Kind::Scalar:
        data_row(offset, p_.size_of(t.scalar_kind()), 1,
                 tags::category_of(t.scalar_kind()), t.scalar_kind());
        return;
      case TypeDesc::Kind::Pointer:
        data_row(offset, p_.size_of(plat::ScalarKind::Pointer), -1,
                 FlatRun::Cat::Pointer, plat::ScalarKind::Pointer);
        return;
      case TypeDesc::Kind::Reserved:
        padding_row(offset, static_cast<std::uint32_t>(t.reserved_bytes()));
        return;
      case TypeDesc::Kind::Array: {
        const TypeDesc& e = *t.element();
        if (e.kind() == TypeDesc::Kind::Scalar) {
          data_row(offset, p_.size_of(e.scalar_kind()),
                   static_cast<std::int64_t>(t.count()),
                   tags::category_of(e.scalar_kind()), e.scalar_kind());
          return;
        }
        if (e.kind() == TypeDesc::Kind::Pointer) {
          data_row(offset, p_.size_of(plat::ScalarKind::Pointer),
                   -static_cast<std::int64_t>(t.count()),
                   FlatRun::Cat::Pointer, plat::ScalarKind::Pointer);
          return;
        }
        const std::uint64_t stride = tags::size_of(e, p_);
        for (std::uint64_t i = 0; i < t.count(); ++i) {
          member(e, offset + i * stride);
          if (i + 1 < t.count()) padding_row(offset + (i + 1) * stride, 0);
        }
        return;
      }
      case TypeDesc::Kind::Struct:
        struct_members(t, offset);
        return;
    }
  }

  /// Emit rows for a struct's members including the per-member padding rows.
  void struct_members(const TypeDesc& t, std::uint64_t base) {
    std::uint64_t cursor = 0;
    const std::uint64_t total = tags::size_of(t, p_);
    const std::size_t nfields = t.fields().size();
    for (std::size_t i = 0; i < nfields; ++i) {
      const tags::Field& f = t.fields()[i];
      const std::uint64_t aligned =
          round_up(cursor, tags::align_of(*f.type, p_));
      member(*f.type, base + aligned);
      cursor = aligned + tags::size_of(*f.type, p_);
      const std::uint64_t next =
          (i + 1 < nfields)
              ? round_up(cursor, tags::align_of(*t.fields()[i + 1].type, p_))
              : total;
      padding_row(base + cursor, static_cast<std::uint32_t>(next - cursor));
      cursor = next;
    }
  }

  std::vector<IndexRow> take() { return std::move(rows_); }

  std::size_t row_count() const noexcept { return rows_.size(); }

  void padding_row(std::uint64_t offset, std::uint32_t bytes) {
    IndexRow r;
    r.offset = offset;
    r.size = bytes;
    r.number = 0;
    r.cat = FlatRun::Cat::Padding;
    rows_.push_back(r);
  }

 private:
  void data_row(std::uint64_t offset, std::uint32_t size, std::int64_t number,
                FlatRun::Cat cat, plat::ScalarKind kind) {
    IndexRow r;
    r.offset = offset;
    r.size = size;
    r.number = number;
    r.cat = cat;
    r.kind = kind;
    rows_.push_back(r);
  }

  const plat::PlatformDesc& p_;
  std::vector<IndexRow> rows_;
};

}  // namespace

IndexTable::IndexTable(tags::TypePtr type, const plat::PlatformDesc& platform)
    : layout_(tags::compute_layout(type, platform)) {
  RowBuilder b(platform);
  if (type->kind() == TypeDesc::Kind::Struct) {
    // Inline the struct walk so the first row of every top-level field can
    // be recorded for name-based lookups.
    std::uint64_t cursor = 0;
    const std::uint64_t total = tags::size_of(*type, platform);
    const std::size_t nfields = type->fields().size();
    for (std::size_t i = 0; i < nfields; ++i) {
      const tags::Field& f = type->fields()[i];
      const std::uint64_t aligned =
          round_up(cursor, tags::align_of(*f.type, platform));
      field_rows_.push_back(b.row_count());
      field_names_.push_back(f.name);
      b.member(*f.type, aligned);
      cursor = aligned + tags::size_of(*f.type, platform);
      const std::uint64_t next =
          (i + 1 < nfields)
              ? round_up(cursor,
                         tags::align_of(*type->fields()[i + 1].type, platform))
              : total;
      b.padding_row(cursor, static_cast<std::uint32_t>(next - cursor));
      cursor = next;
    }
  } else {
    b.member(*type, 0);
    b.padding_row(tags::size_of(*type, platform), 0);
  }
  rows_ = b.take();
}

std::size_t IndexTable::row_of_field(std::size_t field_index) const {
  return field_rows_.at(field_index);
}

std::size_t IndexTable::row_of_field(const std::string& name) const {
  for (std::size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) return field_rows_[i];
  }
  throw std::out_of_range("IndexTable: no top-level field named " + name);
}

IndexTable::Locator IndexTable::locate(std::uint64_t offset) const {
  if (offset >= layout_.size) {
    throw std::out_of_range("IndexTable::locate: offset past image end");
  }
  // Rows are offset-ordered; zero-length padding rows share offsets with
  // their successors, so search by row end and skip zero-length rows.
  std::size_t lo = 0, hi = rows_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (rows_[mid].end() <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  while (lo < rows_.size() && rows_[lo].byte_length() == 0) ++lo;
  if (lo >= rows_.size()) {
    throw std::out_of_range("IndexTable::locate: no row covers offset");
  }
  Locator loc;
  loc.row = lo;
  const IndexRow& r = rows_[lo];
  loc.elem = r.is_padding() ? 0 : (offset - r.offset) / r.size;
  return loc;
}

std::string IndexTable::to_table_string(std::uint64_t base_address) const {
  std::ostringstream os;
  os << "Address      Size  Number\n";
  for (const IndexRow& r : rows_) {
    os << "0x" << std::hex << base_address + r.offset << std::dec << "  "
       << r.size << "  " << r.number << "\n";
  }
  return os.str();
}

std::vector<UpdateRun> map_ranges_to_runs(
    const IndexTable& table, const std::vector<mem::ByteRange>& ranges,
    bool coalesce) {
  std::vector<UpdateRun> out;
  const std::vector<IndexRow>& rows = table.rows();
  for (const mem::ByteRange& range : ranges) {
    if (range.length() == 0) continue;
    std::uint64_t pos = range.begin;
    while (pos < range.end) {
      const IndexTable::Locator loc = table.locate(pos);
      const IndexRow& row = rows[loc.row];
      const std::uint64_t row_end = row.end();
      const std::uint64_t seg_end = std::min<std::uint64_t>(range.end, row_end);
      if (!row.is_padding()) {
        const std::uint64_t first = (pos - row.offset) / row.size;
        const std::uint64_t last = (seg_end - 1 - row.offset) / row.size;
        UpdateRun run;
        run.row = static_cast<std::uint32_t>(loc.row);
        run.first_elem = first;
        run.count = last - first + 1;
        if (coalesce && !out.empty() && out.back().row == run.row &&
            out.back().first_elem + out.back().count >= run.first_elem) {
          UpdateRun& prev = out.back();
          const std::uint64_t new_last = run.first_elem + run.count;
          const std::uint64_t prev_last = prev.first_elem + prev.count;
          if (new_last > prev_last) {
            prev.count = new_last - prev.first_elem;
          }
        } else {
          out.push_back(run);
        }
      }
      pos = seg_end;
    }
  }
  return out;
}

std::uint64_t run_offset(const IndexTable& table, const UpdateRun& run) {
  const IndexRow& row = table.rows().at(run.row);
  return row.offset + run.first_elem * row.size;
}

std::uint64_t run_byte_length(const IndexTable& table, const UpdateRun& run) {
  const IndexRow& row = table.rows().at(run.row);
  return run.count * static_cast<std::uint64_t>(row.size);
}

tags::Tag run_tag(const IndexTable& table, const UpdateRun& run) {
  const IndexRow& row = table.rows().at(run.row);
  return tags::make_run_tag(row.size, run.count, row.is_pointer());
}

}  // namespace hdsm::idx
