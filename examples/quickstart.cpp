// Quickstart: share a global structure between a home node and one remote
// thread on a different (virtual) platform, with Pthreads-style distributed
// lock/unlock.
//
//   $ ./quickstart
//
// Walks through the library's core loop:
//   1. describe the global data (GThV) once,
//   2. start a home node and attach a remote thread,
//   3. synchronize with MTh_lock / MTh_unlock — writes are detected by
//      mprotect twin/diff, abstracted to index tags, and converted
//      receiver-makes-right across the endianness boundary.
#include <cstdio>
#include <thread>

#include "hdsm.hpp"  // umbrella header: the whole public API

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
using tags::TypeDesc;

int main() {
  // 1. The shared global structure (what MigThread's preprocessor would
  //    collect from your globals):  struct { int values[16]; int sum; }
  tags::TypePtr gthv = TypeDesc::struct_of(
      "Quickstart", {{"values", TypeDesc::array(tags::t_int(), 16)},
                     {"sum", tags::t_int()}});

  // 2. Home node on a little-endian platform; remote thread on big-endian
  //    SPARC.  (Use plat::host() on both sides for a homogeneous setup.)
  dsm::HomeNode home(gthv, plat::linux_ia32());
  std::thread remote_thread([&home, gthv] {
    dsm::RemoteThread remote(gthv, plat::solaris_sparc32(), /*rank=*/1,
                             home.attach(1));
    // 3. Classic critical section, distributed:
    remote.lock(0);
    auto values = remote.space().view<std::int32_t>("values");
    for (std::uint64_t i = 0; i < values.size(); ++i) {
      values.set(i, static_cast<std::int32_t>(10 * (i + 1)));
    }
    remote.unlock(0);
    remote.join();
  });

  home.start();
  remote_thread.join();
  home.wait_all_joined();

  // The remote's big-endian writes arrived converted into the home image.
  auto values = home.space().view<std::int32_t>("values");
  std::int32_t sum = 0;
  for (std::uint64_t i = 0; i < values.size(); ++i) sum += values.get(i);
  home.space().view<std::int32_t>("sum").set(sum);

  std::printf("values[0]=%d values[15]=%d sum=%d (expected 10..160, 1360)\n",
              values.get(0), values.get(15),
              home.space().view<std::int32_t>("sum").get());
  std::printf("home image tag:   %s\n", home.space().image_tag_text().c_str());
  std::printf("sharing stats:    %s\n", home.stats().to_string().c_str());
  home.stop();
  return sum == 1360 ? 0 : 1;
}
