// A guided tour of the heterogeneity machinery over a real TCP socket:
// shows the per-platform tags (Figure 3 style), the index tables (Table 1
// style), the raw byte images on both sides of an update, and the Eq.-1
// cost buckets of one synchronization round between a big-endian home and
// a little-endian remote.
//
//   $ ./heterogeneous_pair
#include <cstdio>
#include <thread>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "msg/tcp.hpp"

namespace dsm = hdsm::dsm;
namespace msg = hdsm::msg;
namespace plat = hdsm::plat;
namespace tags = hdsm::tags;
using tags::TypeDesc;

namespace {

tags::TypePtr gthv() {
  return TypeDesc::struct_of("Pair", {{"GThP", TypeDesc::pointer()},
                                      {"data", TypeDesc::array(tags::t_int(), 8)},
                                      {"scale", tags::t_double()}});
}

void dump_bytes(const char* label, const std::byte* p, std::size_t n) {
  std::printf("%s", label);
  for (std::size_t i = 0; i < n; ++i) {
    std::printf(" %02x", std::to_integer<unsigned>(p[i]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const plat::PlatformDesc& home_plat = plat::solaris_sparc32();
  const plat::PlatformDesc& remote_plat = plat::linux_ia32();

  dsm::HomeNode home(gthv(), home_plat);
  msg::TcpListener listener(0);
  std::printf("home:   %s (big endian), listening on 127.0.0.1:%u\n",
              home_plat.name.c_str(), listener.port());
  std::printf("remote: %s (little endian)\n\n", remote_plat.name.c_str());

  std::printf("image tags (compare to detect heterogeneity):\n");
  std::printf("  home:   %s\n", home.space().image_tag_text().c_str());
  {
    dsm::GlobalSpace preview(gthv(), remote_plat);
    std::printf("  remote: %s\n\n", preview.image_tag_text().c_str());
  }
  std::printf("index table at home (Table 1 form, base 0x0):\n%s\n",
              home.space().table().to_table_string(0).c_str());

  std::thread remote_thread([&, port = listener.port()] {
    dsm::RemoteThread remote(gthv(), remote_plat, 1, msg::tcp_connect(port));
    remote.lock(0);
    auto data = remote.space().view<std::int32_t>("data");
    for (int i = 0; i < 8; ++i) data.set(i, 0x01020300 + i);
    remote.space().view<double>("scale").set(2.5);
    const std::size_t off =
        remote.space().table().rows()[remote.space().table().row_of_field(
            "data")].offset;
    dump_bytes("remote image bytes (LE) of data[0..1]:",
               remote.space().region().data() + off, 8);
    remote.unlock(0);
    remote.join();
  });

  home.attach_endpoint(1, listener.accept());
  home.start();
  remote_thread.join();
  home.wait_all_joined();

  const std::size_t off =
      home.space().table().rows()[home.space().table().row_of_field("data")]
          .offset;
  dump_bytes("home image bytes (BE) of data[0..1]:  ",
             home.space().region().data() + off, 8);

  auto data = home.space().view<std::int32_t>("data");
  bool ok = home.space().view<double>("scale").get() == 2.5;
  for (int i = 0; i < 8; ++i) ok = ok && data.get(i) == 0x01020300 + i;
  std::printf("\nvalues identical across representations: %s\n",
              ok ? "yes" : "NO");
  std::printf("home-side sharing stats:   %s\n",
              home.stats().to_string().c_str());
  home.stop();
  return ok ? 0 : 1;
}
