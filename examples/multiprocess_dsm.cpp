// True multi-process operation: the home node and each worker run in
// separate OS processes, connected over loopback TCP — the deployment
// shape of a real software DSM (each process genuinely has a disjoint
// address space; nothing is shared but the wire).
//
//   $ ./multiprocess_dsm            # spawns two worker processes
//
// Internally re-executes itself as:
//   ./multiprocess_dsm worker <port> <rank> <platform>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "msg/tcp.hpp"
#include "tags/describe.hpp"

namespace dsm = hdsm::dsm;
namespace msg = hdsm::msg;
namespace plat = hdsm::plat;
namespace tags = hdsm::tags;

namespace {

constexpr std::uint32_t kElems = 64;

tags::TypePtr gthv() {
  return tags::describe_struct("G")
      .array<long long>("sums", kElems)
      .field<int>("rounds")
      .build();
}

int run_worker(std::uint16_t port, std::uint32_t rank,
               const std::string& platform_name) {
  const plat::PlatformDesc& platform = plat::preset_by_name(platform_name);
  dsm::RemoteThread remote(gthv(), platform, rank, msg::tcp_connect(port));
  // Each worker adds rank*i to every element, under the distributed lock.
  for (int round = 0; round < 5; ++round) {
    remote.lock(0);
    auto sums = remote.space().view<std::int64_t>("sums");
    for (std::uint32_t i = 0; i < kElems; ++i) {
      sums.set(i, sums.get(i) + static_cast<std::int64_t>(rank) * i);
    }
    remote.unlock(0);
  }
  remote.barrier(0);
  remote.join();
  return 0;
}

pid_t spawn_worker(const char* self, std::uint16_t port, std::uint32_t rank,
                   const char* platform_name) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string port_s = std::to_string(port);
    const std::string rank_s = std::to_string(rank);
    ::execl(self, self, "worker", port_s.c_str(), rank_s.c_str(),
            platform_name, static_cast<char*>(nullptr));
    std::perror("execl");
    ::_exit(127);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5 && std::string(argv[1]) == "worker") {
    return run_worker(static_cast<std::uint16_t>(std::atoi(argv[2])),
                      static_cast<std::uint32_t>(std::atoi(argv[3])),
                      argv[4]);
  }

  dsm::HomeNode home(gthv(), plat::linux_ia32());
  // Three threads meet at barrier 0; fix the count up front so a worker
  // that races ahead of the second accept cannot close the episode early.
  home.set_barrier_count(0, 3);
  msg::TcpListener listener(0);
  std::printf("home pid %d listening on 127.0.0.1:%u\n", ::getpid(),
              listener.port());

  const pid_t w1 = spawn_worker(argv[0], listener.port(), 1, "linux-ia32");
  const pid_t w2 =
      spawn_worker(argv[0], listener.port(), 2, "solaris-sparc32");
  std::printf("spawned worker pids %d (linux-ia32) and %d "
              "(solaris-sparc32)\n",
              w1, w2);

  // Accept both connections; rank arrives in each worker's Hello.
  for (int i = 0; i < 2; ++i) {
    msg::EndpointPtr ep = listener.accept();
    const msg::Message hello = ep->recv();
    if (hello.type != msg::MsgType::Hello) {
      std::fprintf(stderr, "unexpected first message\n");
      return 1;
    }
    home.attach_endpoint(hello.rank, std::move(ep));
    std::printf("attached rank %u over TCP\n", hello.rank);
  }
  home.start();
  home.barrier(0);
  home.wait_all_joined();

  int status = 0;
  ::waitpid(w1, &status, 0);
  const bool w1_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  ::waitpid(w2, &status, 0);
  const bool w2_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;

  // Each element i accumulated 5*(1*i) + 5*(2*i) = 15*i.
  auto sums = home.space().view<std::int64_t>("sums");
  bool ok = w1_ok && w2_ok;
  for (std::uint32_t i = 0; i < kElems; ++i) {
    ok = ok && sums.get(i) == 15 * static_cast<std::int64_t>(i);
  }
  std::printf("cross-process result correct: %s\n", ok ? "yes" : "NO");
  home.stop();
  return ok ? 0 : 1;
}
