// The full adaptive story of the paper's introduction, end to end:
//
//   1. A parallel job starts on one busy workstation (home + 2 workers).
//   2. An idle machine joins the system; the adaptation policy notices the
//      imbalance and dispatches a worker's state to it (iso-computing:
//      same slot, new node — and a different byte order).
//   3. The workers keep updating shared data through the DSD the whole
//      time; the result is exact.
//   4. Finally the (quiesced) home itself migrates to the faster machine —
//      master migration re-homes the system with one CGT-RMR conversion.
//
//   $ ./adaptive_cluster
#include <cstdio>
#include <thread>

#include "dsm/home.hpp"
#include "dsm/rehome.hpp"
#include "dsm/remote.hpp"
#include "mig/runner.hpp"
#include "mig/thread_state.hpp"
#include "sched/policy.hpp"
#include "tags/describe.hpp"

namespace dsm = hdsm::dsm;
namespace mig = hdsm::mig;
namespace msg = hdsm::msg;
namespace plat = hdsm::plat;
namespace tags = hdsm::tags;
namespace sched = hdsm::sched;

namespace {

constexpr std::uint32_t kN = 120;  // shared work items per worker

tags::TypePtr gthv() {
  return tags::describe_struct("G")
      .array<long long>("out1", kN)
      .array<long long>("out2", kN)
      .build();
}

tags::TypePtr locals() {
  return tags::describe_struct("fill_locals").field<int>("i").build();
}

mig::StepOutcome worker_body(mig::ThreadState& state,
                             const std::atomic<bool>& migrate,
                             dsm::RemoteThread& dsd, const char* field) {
  mig::Frame& f = state.top();
  std::int32_t i = f.locals.get<std::int32_t>("i");
  while (i < static_cast<std::int32_t>(kN)) {
    if (i >= 40 && migrate.load()) {
      f.locals.set<std::int32_t>("i", i);
      f.label = 1;
      return mig::StepOutcome::MigrationPoint;
    }
    dsd.lock(state.rank);
    auto out = dsd.space().view<std::int64_t>(field);
    for (int k = 0; k < 8 && i < static_cast<std::int32_t>(kN); ++k, ++i) {
      out.set(i, static_cast<std::int64_t>(i) * state.rank);
    }
    dsd.unlock(state.rank);
  }
  f.locals.set<std::int32_t>("i", i);
  return mig::StepOutcome::Finished;
}

}  // namespace

int main() {
  // Phase 1: everything on the busy home workstation.
  auto home = std::make_unique<dsm::HomeNode>(gthv(), plat::linux_ia32());
  home->start();

  mig::RoleTracker roles(/*nodes=*/1, /*slots=*/3);
  sched::LoadModel load({0.35}, 0.25);  // 0.35 + 3*0.25 = 1.10: overloaded
  sched::AdaptationPolicy policy;

  std::printf("phase 1: home node load = %.2f (overloaded)\n",
              load(roles, 0));

  // Phase 2: an idle big-endian machine joins.
  const std::size_t newcomer = roles.add_node();
  load.add_node(0.05);
  const auto decision = policy.rebalance(roles, load, /*max_moves=*/1);
  if (decision.empty()) {
    std::printf("policy proposed no migration — unexpected\n");
    return 1;
  }
  std::printf(
      "phase 2: node %zu joined; policy migrates slot %zu from node %zu to "
      "node %zu\n",
      newcomer, decision[0].slot, decision[0].src, decision[0].dst);

  mig::StateSchema schema;
  schema.register_frame("worker", locals());
  auto [mig_src, mig_dst] = msg::make_channel_pair();
  std::atomic<bool> migrate1{true};  // the policy's request for slot 1
  std::atomic<bool> never{false};

  // Worker 1: starts at home platform, migrates to the newcomer.
  std::thread worker1_src([&] {
    dsm::RemoteThread dsd(gthv(), plat::linux_ia32(), 1, home->attach(1));
    mig::ThreadState state;
    state.rank = 1;
    state.frames.push_back(
        mig::Frame{"worker", 0, mig::StructImage(locals(), plat::linux_ia32())});
    const auto body = [&dsd](mig::ThreadState& s, const std::atomic<bool>& m) {
      return worker_body(s, m, dsd, "out1");
    };
    if (mig::run_until_yield(body, state, migrate1) ==
        mig::StepOutcome::MigrationPoint) {
      dsd.join();
      mig::send_state(*mig_src, state, plat::linux_ia32());
    } else {
      dsd.join();
    }
  });
  std::thread worker1_dst([&] {
    mig::ThreadState state =
        mig::receive_state(*mig_dst, schema, plat::solaris_sparc64());
    std::printf("phase 2: worker 1 resumed at i=%d on %s\n",
                state.top().locals.get<std::int32_t>("i"),
                "solaris-sparc64");
    dsm::RemoteThread dsd(gthv(), plat::solaris_sparc64(), state.rank,
                          home->attach(state.rank));
    const auto body = [&dsd](mig::ThreadState& s, const std::atomic<bool>& m) {
      return worker_body(s, m, dsd, "out1");
    };
    mig::run_to_completion(body, state);
    dsd.join();
  });

  // Worker 2 stays put.
  std::thread worker2([&] {
    dsm::RemoteThread dsd(gthv(), plat::linux_ia32(), 2, home->attach(2));
    mig::ThreadState state;
    state.rank = 2;
    state.frames.push_back(
        mig::Frame{"worker", 0, mig::StructImage(locals(), plat::linux_ia32())});
    const auto body = [&dsd](mig::ThreadState& s, const std::atomic<bool>& m) {
      return worker_body(s, m, dsd, "out2");
    };
    mig::run_to_completion(body, state);
    dsd.join();
  });

  worker1_src.join();
  worker1_dst.join();
  worker2.join();
  home->wait_all_joined();

  // Phase 3: re-home the quiesced system onto the stronger machine.
  auto new_home = dsm::rehome(*home, plat::solaris_sparc64());
  roles.migrate(0, 0, newcomer);
  std::printf("phase 3: re-homed onto node %zu (%s); home node is now %zu\n",
              newcomer, new_home->space().platform().name.c_str(),
              roles.home_node());

  bool ok = true;
  auto o1 = new_home->space().view<std::int64_t>("out1");
  auto o2 = new_home->space().view<std::int64_t>("out2");
  for (std::uint32_t i = 0; i < kN; ++i) {
    ok = ok && o1.get(i) == static_cast<std::int64_t>(i) * 1 &&
         o2.get(i) == static_cast<std::int64_t>(i) * 2;
  }
  std::printf("results exact after join + migration + re-homing: %s\n",
              ok ? "yes" : "NO");
  new_home->stop();
  return ok ? 0 : 1;
}
