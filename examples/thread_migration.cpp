// Adaptive execution (paper §1, §3.1): a worker thread starts on one
// remote node, a "scheduler" requests migration mid-computation, and the
// thread's application-level state — logical PC, tagged locals, heap
// objects — moves to a node with a different byte order, where a skeleton
// thread resumes it.  The shared matrix lives in the DSD the whole time.
//
//   $ ./thread_migration
#include <cstdio>
#include <thread>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "mig/roles.hpp"
#include "mig/runner.hpp"
#include "mig/thread_state.hpp"

namespace dsm = hdsm::dsm;
namespace mig = hdsm::mig;
namespace msg = hdsm::msg;
namespace plat = hdsm::plat;
namespace tags = hdsm::tags;
using tags::TypeDesc;

namespace {

constexpr std::uint32_t kN = 200;

tags::TypePtr gthv() {
  return TypeDesc::struct_of(
      "G", {{"squares", TypeDesc::array(tags::t_longlong(), kN)}});
}

tags::TypePtr locals() {
  return TypeDesc::struct_of("fill_locals", {{"i", tags::t_int()}});
}

/// Fills squares[i] = i*i through the DSD, one lock round per chunk, with
/// a migration point between chunks.
mig::StepOutcome fill_body(mig::ThreadState& state,
                           const std::atomic<bool>& migrate,
                           dsm::RemoteThread& dsd) {
  mig::Frame& f = state.top();
  std::int32_t i = f.locals.get<std::int32_t>("i");
  while (i < static_cast<std::int32_t>(kN)) {
    // Adaptation points honor the scheduler only once warm (i >= 50), so
    // the run always demonstrates a mid-computation hand-off.
    if (i >= 50 && migrate.load()) {
      f.locals.set<std::int32_t>("i", i);
      f.label = 1;
      return mig::StepOutcome::MigrationPoint;
    }
    dsd.lock(0);
    auto sq = dsd.space().view<std::int64_t>("squares");
    for (int k = 0; k < 10 && i < static_cast<std::int32_t>(kN); ++k, ++i) {
      sq.set(i, static_cast<std::int64_t>(i) * i);
    }
    dsd.unlock(0);
  }
  f.locals.set<std::int32_t>("i", i);
  return mig::StepOutcome::Finished;
}

}  // namespace

int main() {
  dsm::HomeNode home(gthv(), plat::linux_ia32());
  home.start();

  mig::StateSchema schema;
  schema.register_frame("fill", locals());
  mig::RoleTracker roles(/*nodes=*/3, /*slots=*/2);
  roles.migrate(1, 0, 1);  // dispatch the worker to node 1 at start-up
  std::printf("roles: node1/slot1=%s node0/slot1=%s\n",
              mig::role_name(roles.role(1, 1)),
              mig::role_name(roles.role(0, 1)));

  auto [mig_src, mig_dst] = msg::make_channel_pair();
  // The "scheduler" requests the move up front; the worker honors it at
  // its first adaptation point past the warm-up threshold (i >= 50), so
  // the hand-off always happens mid-computation.  (Setting the flag from
  // another thread *after* spawning would race with a fast worker that
  // finishes before ever seeing it — and then nobody would feed node 2.)
  std::atomic<bool> migrate{true};

  std::thread node1([&] {
    dsm::RemoteThread dsd(gthv(), plat::linux_ia32(), 1, home.attach(1));
    mig::ThreadState state;
    state.rank = 1;
    state.frames.push_back(
        mig::Frame{"fill", 0, mig::StructImage(locals(), plat::linux_ia32())});
    const auto body = [&dsd](mig::ThreadState& s, const std::atomic<bool>& m) {
      return fill_body(s, m, dsd);
    };
    if (mig::run_until_yield(body, state, migrate) ==
        mig::StepOutcome::MigrationPoint) {
      std::printf("node1: yielding at i=%d, shipping state (little-endian)\n",
                  state.top().locals.get<std::int32_t>("i"));
      dsd.join();
      mig::send_state(*mig_src, state, plat::linux_ia32());
    } else {
      dsd.join();
    }
  });

  std::thread node2([&] {
    mig::ThreadState state =
        mig::receive_state(*mig_dst, schema, plat::solaris_sparc64());
    std::printf("node2: resumed at label %u, i=%d (big-endian image)\n",
                state.top().label, state.top().locals.get<std::int32_t>("i"));
    dsm::RemoteThread dsd(gthv(), plat::solaris_sparc64(), state.rank,
                          home.attach(state.rank));
    std::atomic<bool> never{false};
    const auto body = [&dsd](mig::ThreadState& s, const std::atomic<bool>& m) {
      return fill_body(s, m, dsd);
    };
    mig::run_to_completion(body, state);
    dsd.join();
  });

  node1.join();
  node2.join();
  roles.migrate(1, 1, 2);
  std::printf("roles after migration: node1/slot1=%s node2/slot1=%s\n",
              mig::role_name(roles.role(1, 1)),
              mig::role_name(roles.role(2, 1)));
  home.wait_all_joined();

  auto sq = home.space().view<std::int64_t>("squares");
  bool ok = true;
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (sq.get(i) != static_cast<std::int64_t>(i) * i) ok = false;
  }
  std::printf("all %u squares correct at home: %s\n", kN, ok ? "yes" : "NO");
  home.stop();
  return ok ? 0 : 1;
}
