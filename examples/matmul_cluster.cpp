// The paper's headline scenario (§5): matrix multiplication with three
// threads — the master at the home node and two threads "migrated" to
// remote nodes — on a heterogeneous Solaris/Linux pair, with the
// data-sharing penalty broken down per Equation 1.
//
//   $ ./matmul_cluster [n]        (default n = 138, a paper size)
#include <cstdio>
#include <cstdlib>

#include "workloads/experiment.hpp"

namespace work = hdsm::work;

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 138;

  std::printf("C = A x B, %ux%u int matrices, 3 threads (2 remote)\n\n", n,
              n);
  for (const work::PairSpec& pair : work::paper_pairs()) {
    const work::ExperimentResult r = work::run_matmul_experiment(pair, n);
    std::printf("%s (home=%s, remotes=%s):\n", pair.name.c_str(),
                pair.home->name.c_str(), pair.remote->name.c_str());
    std::printf("  verified against serial reference: %s\n",
                r.verified ? "yes" : "NO");
    std::printf("  wall time: %.3f s\n", r.wall_seconds);
    std::printf("  C_share breakdown: %s\n\n", r.total.to_string().c_str());
    if (!r.verified) return 1;
  }
  return 0;
}
