# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_thread_migration "/root/repo/build/examples/thread_migration")
set_tests_properties(example_thread_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heterogeneous_pair "/root/repo/build/examples/heterogeneous_pair")
set_tests_properties(example_heterogeneous_pair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_cluster "/root/repo/build/examples/adaptive_cluster")
set_tests_properties(example_adaptive_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprocess_dsm "/root/repo/build/examples/multiprocess_dsm")
set_tests_properties(example_multiprocess_dsm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_cluster "/root/repo/build/examples/matmul_cluster" "24")
set_tests_properties(example_matmul_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
