# Empty dependencies file for multiprocess_dsm.
# This may be replaced when dependencies are built.
