file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_dsm.dir/multiprocess_dsm.cpp.o"
  "CMakeFiles/multiprocess_dsm.dir/multiprocess_dsm.cpp.o.d"
  "multiprocess_dsm"
  "multiprocess_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
