file(REMOVE_RECURSE
  "CMakeFiles/thread_migration.dir/thread_migration.cpp.o"
  "CMakeFiles/thread_migration.dir/thread_migration.cpp.o.d"
  "thread_migration"
  "thread_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
