# Empty compiler generated dependencies file for thread_migration.
# This may be replaced when dependencies are built.
