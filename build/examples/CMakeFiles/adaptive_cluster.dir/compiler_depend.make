# Empty compiler generated dependencies file for adaptive_cluster.
# This may be replaced when dependencies are built.
