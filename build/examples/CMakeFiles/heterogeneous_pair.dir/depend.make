# Empty dependencies file for heterogeneous_pair.
# This may be replaced when dependencies are built.
