file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_pair.dir/heterogeneous_pair.cpp.o"
  "CMakeFiles/heterogeneous_pair.dir/heterogeneous_pair.cpp.o.d"
  "heterogeneous_pair"
  "heterogeneous_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
