file(REMOVE_RECURSE
  "../bench/bench_abl_diff_threshold"
  "../bench/bench_abl_diff_threshold.pdb"
  "CMakeFiles/bench_abl_diff_threshold.dir/bench_abl_diff_threshold.cpp.o"
  "CMakeFiles/bench_abl_diff_threshold.dir/bench_abl_diff_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_diff_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
