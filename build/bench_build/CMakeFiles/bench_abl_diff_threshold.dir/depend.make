# Empty dependencies file for bench_abl_diff_threshold.
# This may be replaced when dependencies are built.
