file(REMOVE_RECURSE
  "../bench/bench_micro_diff"
  "../bench/bench_micro_diff.pdb"
  "CMakeFiles/bench_micro_diff.dir/bench_micro_diff.cpp.o"
  "CMakeFiles/bench_micro_diff.dir/bench_micro_diff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
