file(REMOVE_RECURSE
  "../bench/bench_fig10_conversion_mm"
  "../bench/bench_fig10_conversion_mm.pdb"
  "CMakeFiles/bench_fig10_conversion_mm.dir/bench_fig10_conversion_mm.cpp.o"
  "CMakeFiles/bench_fig10_conversion_mm.dir/bench_fig10_conversion_mm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_conversion_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
