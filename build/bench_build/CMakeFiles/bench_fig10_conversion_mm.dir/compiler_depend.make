# Empty compiler generated dependencies file for bench_fig10_conversion_mm.
# This may be replaced when dependencies are built.
