# Empty compiler generated dependencies file for bench_micro_trap.
# This may be replaced when dependencies are built.
