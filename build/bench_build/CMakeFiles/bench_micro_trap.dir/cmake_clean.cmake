file(REMOVE_RECURSE
  "../bench/bench_micro_trap"
  "../bench/bench_micro_trap.pdb"
  "CMakeFiles/bench_micro_trap.dir/bench_micro_trap.cpp.o"
  "CMakeFiles/bench_micro_trap.dir/bench_micro_trap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
