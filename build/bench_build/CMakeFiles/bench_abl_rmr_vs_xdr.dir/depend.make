# Empty dependencies file for bench_abl_rmr_vs_xdr.
# This may be replaced when dependencies are built.
