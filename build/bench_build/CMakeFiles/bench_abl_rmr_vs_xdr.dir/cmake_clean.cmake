file(REMOVE_RECURSE
  "../bench/bench_abl_rmr_vs_xdr"
  "../bench/bench_abl_rmr_vs_xdr.pdb"
  "CMakeFiles/bench_abl_rmr_vs_xdr.dir/bench_abl_rmr_vs_xdr.cpp.o"
  "CMakeFiles/bench_abl_rmr_vs_xdr.dir/bench_abl_rmr_vs_xdr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rmr_vs_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
