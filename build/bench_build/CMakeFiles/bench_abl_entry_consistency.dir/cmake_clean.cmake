file(REMOVE_RECURSE
  "../bench/bench_abl_entry_consistency"
  "../bench/bench_abl_entry_consistency.pdb"
  "CMakeFiles/bench_abl_entry_consistency.dir/bench_abl_entry_consistency.cpp.o"
  "CMakeFiles/bench_abl_entry_consistency.dir/bench_abl_entry_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_entry_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
