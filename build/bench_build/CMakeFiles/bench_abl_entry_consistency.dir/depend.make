# Empty dependencies file for bench_abl_entry_consistency.
# This may be replaced when dependencies are built.
