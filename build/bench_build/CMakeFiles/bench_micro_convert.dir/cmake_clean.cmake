file(REMOVE_RECURSE
  "../bench/bench_micro_convert"
  "../bench/bench_micro_convert.pdb"
  "CMakeFiles/bench_micro_convert.dir/bench_micro_convert.cpp.o"
  "CMakeFiles/bench_micro_convert.dir/bench_micro_convert.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
