# Empty dependencies file for bench_micro_convert.
# This may be replaced when dependencies are built.
