# Empty dependencies file for bench_fig11_conversion_lu.
# This may be replaced when dependencies are built.
