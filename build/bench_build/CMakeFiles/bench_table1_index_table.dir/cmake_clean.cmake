file(REMOVE_RECURSE
  "../bench/bench_table1_index_table"
  "../bench/bench_table1_index_table.pdb"
  "CMakeFiles/bench_table1_index_table.dir/bench_table1_index_table.cpp.o"
  "CMakeFiles/bench_table1_index_table.dir/bench_table1_index_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_index_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
