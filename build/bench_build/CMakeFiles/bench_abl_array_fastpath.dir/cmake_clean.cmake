file(REMOVE_RECURSE
  "../bench/bench_abl_array_fastpath"
  "../bench/bench_abl_array_fastpath.pdb"
  "CMakeFiles/bench_abl_array_fastpath.dir/bench_abl_array_fastpath.cpp.o"
  "CMakeFiles/bench_abl_array_fastpath.dir/bench_abl_array_fastpath.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_array_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
