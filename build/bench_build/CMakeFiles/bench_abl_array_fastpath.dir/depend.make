# Empty dependencies file for bench_abl_array_fastpath.
# This may be replaced when dependencies are built.
