file(REMOVE_RECURSE
  "../bench/bench_ext_sor"
  "../bench/bench_ext_sor.pdb"
  "CMakeFiles/bench_ext_sor.dir/bench_ext_sor.cpp.o"
  "CMakeFiles/bench_ext_sor.dir/bench_ext_sor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
