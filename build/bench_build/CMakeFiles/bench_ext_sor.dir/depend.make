# Empty dependencies file for bench_ext_sor.
# This may be replaced when dependencies are built.
