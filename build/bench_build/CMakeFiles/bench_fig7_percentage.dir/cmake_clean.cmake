file(REMOVE_RECURSE
  "../bench/bench_fig7_percentage"
  "../bench/bench_fig7_percentage.pdb"
  "CMakeFiles/bench_fig7_percentage.dir/bench_fig7_percentage.cpp.o"
  "CMakeFiles/bench_fig7_percentage.dir/bench_fig7_percentage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_percentage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
