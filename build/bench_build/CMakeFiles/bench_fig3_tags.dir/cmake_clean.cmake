file(REMOVE_RECURSE
  "../bench/bench_fig3_tags"
  "../bench/bench_fig3_tags.pdb"
  "CMakeFiles/bench_fig3_tags.dir/bench_fig3_tags.cpp.o"
  "CMakeFiles/bench_fig3_tags.dir/bench_fig3_tags.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
