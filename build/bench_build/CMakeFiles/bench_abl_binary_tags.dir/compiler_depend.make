# Empty compiler generated dependencies file for bench_abl_binary_tags.
# This may be replaced when dependencies are built.
