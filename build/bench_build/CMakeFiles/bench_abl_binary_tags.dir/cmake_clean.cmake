file(REMOVE_RECURSE
  "../bench/bench_abl_binary_tags"
  "../bench/bench_abl_binary_tags.pdb"
  "CMakeFiles/bench_abl_binary_tags.dir/bench_abl_binary_tags.cpp.o"
  "CMakeFiles/bench_abl_binary_tags.dir/bench_abl_binary_tags.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_binary_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
