file(REMOVE_RECURSE
  "../bench/bench_abl_coalescing"
  "../bench/bench_abl_coalescing.pdb"
  "CMakeFiles/bench_abl_coalescing.dir/bench_abl_coalescing.cpp.o"
  "CMakeFiles/bench_abl_coalescing.dir/bench_abl_coalescing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
