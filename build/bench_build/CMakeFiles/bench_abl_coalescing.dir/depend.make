# Empty dependencies file for bench_abl_coalescing.
# This may be replaced when dependencies are built.
