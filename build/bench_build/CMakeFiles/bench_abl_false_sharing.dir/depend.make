# Empty dependencies file for bench_abl_false_sharing.
# This may be replaced when dependencies are built.
