# Empty dependencies file for bench_fig9_tag_generation.
# This may be replaced when dependencies are built.
