file(REMOVE_RECURSE
  "../bench/bench_fig9_tag_generation"
  "../bench/bench_fig9_tag_generation.pdb"
  "CMakeFiles/bench_fig9_tag_generation.dir/bench_fig9_tag_generation.cpp.o"
  "CMakeFiles/bench_fig9_tag_generation.dir/bench_fig9_tag_generation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tag_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
