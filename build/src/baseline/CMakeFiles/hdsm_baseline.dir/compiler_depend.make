# Empty compiler generated dependencies file for hdsm_baseline.
# This may be replaced when dependencies are built.
