
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/page_dsm.cpp" "src/baseline/CMakeFiles/hdsm_baseline.dir/page_dsm.cpp.o" "gcc" "src/baseline/CMakeFiles/hdsm_baseline.dir/page_dsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memory/CMakeFiles/hdsm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hdsm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
