file(REMOVE_RECURSE
  "libhdsm_baseline.a"
)
