file(REMOVE_RECURSE
  "CMakeFiles/hdsm_baseline.dir/page_dsm.cpp.o"
  "CMakeFiles/hdsm_baseline.dir/page_dsm.cpp.o.d"
  "libhdsm_baseline.a"
  "libhdsm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
