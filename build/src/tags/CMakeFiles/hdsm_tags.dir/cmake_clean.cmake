file(REMOVE_RECURSE
  "CMakeFiles/hdsm_tags.dir/layout.cpp.o"
  "CMakeFiles/hdsm_tags.dir/layout.cpp.o.d"
  "CMakeFiles/hdsm_tags.dir/tag.cpp.o"
  "CMakeFiles/hdsm_tags.dir/tag.cpp.o.d"
  "CMakeFiles/hdsm_tags.dir/type_desc.cpp.o"
  "CMakeFiles/hdsm_tags.dir/type_desc.cpp.o.d"
  "libhdsm_tags.a"
  "libhdsm_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
