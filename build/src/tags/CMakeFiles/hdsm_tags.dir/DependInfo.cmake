
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tags/layout.cpp" "src/tags/CMakeFiles/hdsm_tags.dir/layout.cpp.o" "gcc" "src/tags/CMakeFiles/hdsm_tags.dir/layout.cpp.o.d"
  "/root/repo/src/tags/tag.cpp" "src/tags/CMakeFiles/hdsm_tags.dir/tag.cpp.o" "gcc" "src/tags/CMakeFiles/hdsm_tags.dir/tag.cpp.o.d"
  "/root/repo/src/tags/type_desc.cpp" "src/tags/CMakeFiles/hdsm_tags.dir/type_desc.cpp.o" "gcc" "src/tags/CMakeFiles/hdsm_tags.dir/type_desc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/hdsm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
