# Empty dependencies file for hdsm_tags.
# This may be replaced when dependencies are built.
