file(REMOVE_RECURSE
  "libhdsm_tags.a"
)
