file(REMOVE_RECURSE
  "CMakeFiles/hdsm_memory.dir/diff.cpp.o"
  "CMakeFiles/hdsm_memory.dir/diff.cpp.o.d"
  "CMakeFiles/hdsm_memory.dir/region.cpp.o"
  "CMakeFiles/hdsm_memory.dir/region.cpp.o.d"
  "CMakeFiles/hdsm_memory.dir/write_trap.cpp.o"
  "CMakeFiles/hdsm_memory.dir/write_trap.cpp.o.d"
  "libhdsm_memory.a"
  "libhdsm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
