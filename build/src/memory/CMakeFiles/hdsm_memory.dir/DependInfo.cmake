
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/diff.cpp" "src/memory/CMakeFiles/hdsm_memory.dir/diff.cpp.o" "gcc" "src/memory/CMakeFiles/hdsm_memory.dir/diff.cpp.o.d"
  "/root/repo/src/memory/region.cpp" "src/memory/CMakeFiles/hdsm_memory.dir/region.cpp.o" "gcc" "src/memory/CMakeFiles/hdsm_memory.dir/region.cpp.o.d"
  "/root/repo/src/memory/write_trap.cpp" "src/memory/CMakeFiles/hdsm_memory.dir/write_trap.cpp.o" "gcc" "src/memory/CMakeFiles/hdsm_memory.dir/write_trap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/hdsm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
