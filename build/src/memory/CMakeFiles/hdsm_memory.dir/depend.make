# Empty dependencies file for hdsm_memory.
# This may be replaced when dependencies are built.
