file(REMOVE_RECURSE
  "libhdsm_memory.a"
)
