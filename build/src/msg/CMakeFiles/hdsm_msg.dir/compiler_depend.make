# Empty compiler generated dependencies file for hdsm_msg.
# This may be replaced when dependencies are built.
