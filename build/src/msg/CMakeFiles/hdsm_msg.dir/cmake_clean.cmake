file(REMOVE_RECURSE
  "CMakeFiles/hdsm_msg.dir/channel.cpp.o"
  "CMakeFiles/hdsm_msg.dir/channel.cpp.o.d"
  "CMakeFiles/hdsm_msg.dir/message.cpp.o"
  "CMakeFiles/hdsm_msg.dir/message.cpp.o.d"
  "CMakeFiles/hdsm_msg.dir/tcp.cpp.o"
  "CMakeFiles/hdsm_msg.dir/tcp.cpp.o.d"
  "libhdsm_msg.a"
  "libhdsm_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
