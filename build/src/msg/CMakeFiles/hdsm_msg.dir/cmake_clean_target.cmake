file(REMOVE_RECURSE
  "libhdsm_msg.a"
)
