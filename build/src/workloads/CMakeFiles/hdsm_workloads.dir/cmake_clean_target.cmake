file(REMOVE_RECURSE
  "libhdsm_workloads.a"
)
