# Empty dependencies file for hdsm_workloads.
# This may be replaced when dependencies are built.
