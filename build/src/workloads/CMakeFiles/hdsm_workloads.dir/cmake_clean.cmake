file(REMOVE_RECURSE
  "CMakeFiles/hdsm_workloads.dir/experiment.cpp.o"
  "CMakeFiles/hdsm_workloads.dir/experiment.cpp.o.d"
  "CMakeFiles/hdsm_workloads.dir/lu.cpp.o"
  "CMakeFiles/hdsm_workloads.dir/lu.cpp.o.d"
  "CMakeFiles/hdsm_workloads.dir/matmul.cpp.o"
  "CMakeFiles/hdsm_workloads.dir/matmul.cpp.o.d"
  "CMakeFiles/hdsm_workloads.dir/sor.cpp.o"
  "CMakeFiles/hdsm_workloads.dir/sor.cpp.o.d"
  "libhdsm_workloads.a"
  "libhdsm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
