file(REMOVE_RECURSE
  "CMakeFiles/hdsm_sched.dir/policy.cpp.o"
  "CMakeFiles/hdsm_sched.dir/policy.cpp.o.d"
  "libhdsm_sched.a"
  "libhdsm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
