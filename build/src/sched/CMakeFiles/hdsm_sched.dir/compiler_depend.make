# Empty compiler generated dependencies file for hdsm_sched.
# This may be replaced when dependencies are built.
