file(REMOVE_RECURSE
  "libhdsm_sched.a"
)
