file(REMOVE_RECURSE
  "libhdsm_dsm.a"
)
