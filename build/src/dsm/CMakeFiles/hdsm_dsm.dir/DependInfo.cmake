
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/arena.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/arena.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/arena.cpp.o.d"
  "/root/repo/src/dsm/cluster.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/cluster.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/cluster.cpp.o.d"
  "/root/repo/src/dsm/home.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/home.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/home.cpp.o.d"
  "/root/repo/src/dsm/image_io.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/image_io.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/image_io.cpp.o.d"
  "/root/repo/src/dsm/mth.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/mth.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/mth.cpp.o.d"
  "/root/repo/src/dsm/rehome.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/rehome.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/rehome.cpp.o.d"
  "/root/repo/src/dsm/remote.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/remote.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/remote.cpp.o.d"
  "/root/repo/src/dsm/stats.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/stats.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/stats.cpp.o.d"
  "/root/repo/src/dsm/sync_engine.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/sync_engine.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/sync_engine.cpp.o.d"
  "/root/repo/src/dsm/trace.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/trace.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/trace.cpp.o.d"
  "/root/repo/src/dsm/update.cpp" "src/dsm/CMakeFiles/hdsm_dsm.dir/update.cpp.o" "gcc" "src/dsm/CMakeFiles/hdsm_dsm.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mig/CMakeFiles/hdsm_mig.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/hdsm_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdsm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/hdsm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hdsm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/hdsm_tags.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hdsm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
