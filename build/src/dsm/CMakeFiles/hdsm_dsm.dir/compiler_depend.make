# Empty compiler generated dependencies file for hdsm_dsm.
# This may be replaced when dependencies are built.
