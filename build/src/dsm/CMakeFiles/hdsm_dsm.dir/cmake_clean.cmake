file(REMOVE_RECURSE
  "CMakeFiles/hdsm_dsm.dir/arena.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/arena.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/cluster.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/cluster.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/home.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/home.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/image_io.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/image_io.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/mth.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/mth.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/rehome.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/rehome.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/remote.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/remote.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/stats.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/stats.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/sync_engine.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/sync_engine.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/trace.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/trace.cpp.o.d"
  "CMakeFiles/hdsm_dsm.dir/update.cpp.o"
  "CMakeFiles/hdsm_dsm.dir/update.cpp.o.d"
  "libhdsm_dsm.a"
  "libhdsm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
