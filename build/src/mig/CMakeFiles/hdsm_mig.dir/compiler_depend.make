# Empty compiler generated dependencies file for hdsm_mig.
# This may be replaced when dependencies are built.
