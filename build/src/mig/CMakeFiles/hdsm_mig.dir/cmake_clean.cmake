file(REMOVE_RECURSE
  "CMakeFiles/hdsm_mig.dir/checkpoint.cpp.o"
  "CMakeFiles/hdsm_mig.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hdsm_mig.dir/io_state.cpp.o"
  "CMakeFiles/hdsm_mig.dir/io_state.cpp.o.d"
  "CMakeFiles/hdsm_mig.dir/portable_heap.cpp.o"
  "CMakeFiles/hdsm_mig.dir/portable_heap.cpp.o.d"
  "CMakeFiles/hdsm_mig.dir/roles.cpp.o"
  "CMakeFiles/hdsm_mig.dir/roles.cpp.o.d"
  "CMakeFiles/hdsm_mig.dir/struct_image.cpp.o"
  "CMakeFiles/hdsm_mig.dir/struct_image.cpp.o.d"
  "CMakeFiles/hdsm_mig.dir/tagged_convert.cpp.o"
  "CMakeFiles/hdsm_mig.dir/tagged_convert.cpp.o.d"
  "CMakeFiles/hdsm_mig.dir/thread_state.cpp.o"
  "CMakeFiles/hdsm_mig.dir/thread_state.cpp.o.d"
  "libhdsm_mig.a"
  "libhdsm_mig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_mig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
