file(REMOVE_RECURSE
  "libhdsm_mig.a"
)
