
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mig/checkpoint.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/checkpoint.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/checkpoint.cpp.o.d"
  "/root/repo/src/mig/io_state.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/io_state.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/io_state.cpp.o.d"
  "/root/repo/src/mig/portable_heap.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/portable_heap.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/portable_heap.cpp.o.d"
  "/root/repo/src/mig/roles.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/roles.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/roles.cpp.o.d"
  "/root/repo/src/mig/struct_image.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/struct_image.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/struct_image.cpp.o.d"
  "/root/repo/src/mig/tagged_convert.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/tagged_convert.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/tagged_convert.cpp.o.d"
  "/root/repo/src/mig/thread_state.cpp" "src/mig/CMakeFiles/hdsm_mig.dir/thread_state.cpp.o" "gcc" "src/mig/CMakeFiles/hdsm_mig.dir/thread_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/convert/CMakeFiles/hdsm_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hdsm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/hdsm_tags.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hdsm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
