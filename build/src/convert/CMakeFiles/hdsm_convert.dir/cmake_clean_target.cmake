file(REMOVE_RECURSE
  "libhdsm_convert.a"
)
