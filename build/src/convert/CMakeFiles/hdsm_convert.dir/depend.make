# Empty dependencies file for hdsm_convert.
# This may be replaced when dependencies are built.
