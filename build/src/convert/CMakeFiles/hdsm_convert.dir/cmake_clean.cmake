file(REMOVE_RECURSE
  "CMakeFiles/hdsm_convert.dir/converter.cpp.o"
  "CMakeFiles/hdsm_convert.dir/converter.cpp.o.d"
  "CMakeFiles/hdsm_convert.dir/xdr.cpp.o"
  "CMakeFiles/hdsm_convert.dir/xdr.cpp.o.d"
  "libhdsm_convert.a"
  "libhdsm_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
