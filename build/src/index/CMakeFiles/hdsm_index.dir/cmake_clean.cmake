file(REMOVE_RECURSE
  "CMakeFiles/hdsm_index.dir/index_table.cpp.o"
  "CMakeFiles/hdsm_index.dir/index_table.cpp.o.d"
  "libhdsm_index.a"
  "libhdsm_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
