file(REMOVE_RECURSE
  "libhdsm_index.a"
)
