# Empty dependencies file for hdsm_index.
# This may be replaced when dependencies are built.
