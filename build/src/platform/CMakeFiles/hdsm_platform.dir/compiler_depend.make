# Empty compiler generated dependencies file for hdsm_platform.
# This may be replaced when dependencies are built.
