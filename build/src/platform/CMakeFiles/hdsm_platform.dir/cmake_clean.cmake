file(REMOVE_RECURSE
  "CMakeFiles/hdsm_platform.dir/float_codec.cpp.o"
  "CMakeFiles/hdsm_platform.dir/float_codec.cpp.o.d"
  "CMakeFiles/hdsm_platform.dir/platform.cpp.o"
  "CMakeFiles/hdsm_platform.dir/platform.cpp.o.d"
  "libhdsm_platform.a"
  "libhdsm_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdsm_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
