file(REMOVE_RECURSE
  "libhdsm_platform.a"
)
