
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hdsm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mig/CMakeFiles/hdsm_mig.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/hdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/hdsm_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hdsm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdsm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/hdsm_tags.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/hdsm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hdsm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
