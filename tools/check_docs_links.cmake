# Docs link checker: every relative markdown link in the repo's docs must
# resolve to a real file.  Absolute URLs (http/https) and pure #anchors are
# out of scope — the point is to catch a doc renamed or moved without its
# cross-references following (README -> docs/SHARDING.md and friends).
#
# Invoked as:
#   cmake -DREPO_DIR=<repo root> -P check_docs_links.cmake

if(NOT DEFINED REPO_DIR)
  message(FATAL_ERROR "check_docs_links: pass -DREPO_DIR=<repo root>")
endif()

file(GLOB top_docs "${REPO_DIR}/*.md")
file(GLOB sub_docs "${REPO_DIR}/docs/*.md")
set(docs ${top_docs} ${sub_docs})
# Retrieval-artifact corpus files (paper abstract, related-work dumps,
# session briefs) are not authored here and may cite assets that were
# never fetched; only the repo's own docs are held to the link contract.
list(FILTER docs EXCLUDE REGEX "/(PAPER|PAPERS|SNIPPETS|ISSUE|CHANGES)\\.md$")

set(broken 0)
set(checked 0)
foreach(doc IN LISTS docs)
  get_filename_component(doc_dir "${doc}" DIRECTORY)
  file(READ "${doc}" text)
  # Two CMake quirks to route around: the regex flavor cannot exclude ")"
  # in a character class, and list items holding unbalanced "[" / "]" break
  # list splitting.  So rewrite "](...)" into a bracket-free marker line
  # first, then collect the marker lines.
  string(REPLACE ")" "\n" text "${text}")
  string(REPLACE "](" "\n@@LINK@@" text "${text}")
  string(REGEX MATCHALL "@@LINK@@[^\n]*" links "${text}")
  foreach(link IN LISTS links)
    string(REPLACE "@@LINK@@" "" target "${link}")
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()  # external or intra-page
    endif()
    string(REGEX REPLACE "#.*$" "" target "${target}")  # strip anchor
    if(target STREQUAL "")
      continue()
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS "${doc_dir}/${target}")
      message(SEND_ERROR
              "check_docs_links: ${doc} links to missing ${target}")
      math(EXPR broken "${broken} + 1")
    endif()
  endforeach()
endforeach()

if(broken GREATER 0)
  message(FATAL_ERROR "check_docs_links: ${broken} broken link(s)")
endif()
message(STATUS "check_docs_links: ${checked} relative links ok")
