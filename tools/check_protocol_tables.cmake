# Protocol docs drift checker: docs/PROTOCOL.md is the normative wire
# description, so every MsgType enumerator and every Message frame-header
# field declared in src/msg/message.hpp must be mentioned there.  Catches
# the classic failure mode of adding a message type or header field and
# forgetting the spec (the compressed-payload flag nearly shipped that
# way).
#
# Invoked as:
#   cmake -DREPO_DIR=<repo root> -P check_protocol_tables.cmake

if(NOT DEFINED REPO_DIR)
  message(FATAL_ERROR "check_protocol_tables: pass -DREPO_DIR=<repo root>")
endif()

set(header "${REPO_DIR}/src/msg/message.hpp")
set(doc "${REPO_DIR}/docs/PROTOCOL.md")
foreach(f IN ITEMS "${header}" "${doc}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "check_protocol_tables: missing ${f}")
  endif()
endforeach()

file(READ "${header}" src)
file(READ "${doc}" spec)

# --- MsgType enumerators ---------------------------------------------------
string(REGEX MATCH "enum class MsgType[^{]*{([^}]*)}" _ "${src}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "check_protocol_tables: no MsgType enum in ${header}")
endif()
set(enum_body "${CMAKE_MATCH_1}")
# Drop // comments so prose identifiers inside them don't count as
# enumerators.
string(REGEX REPLACE "//[^\n]*" "" enum_body "${enum_body}")
string(REGEX MATCHALL "[A-Za-z_][A-Za-z0-9_]*" enumerators "${enum_body}")

set(missing "")
foreach(name IN LISTS enumerators)
  if(NOT spec MATCHES "${name}")
    list(APPEND missing "MsgType::${name}")
  endif()
endforeach()

# --- Frame-header fields ---------------------------------------------------
# Every data member of msg::Message is a wire field and must appear in the
# frame table (or surrounding prose) of PROTOCOL.md.
string(REGEX MATCH "struct Message {(.*)wire_size" _ "${src}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "check_protocol_tables: no Message struct in ${header}")
endif()
set(struct_body "${CMAKE_MATCH_1}")
string(REGEX REPLACE "//[^\n]*" "" struct_body "${struct_body}")
# Member declarations: "<type> <name> = ...;" or "<type> <name>;" — the
# member name is the last identifier before '=' or ';'.
string(REGEX MATCHALL "[A-Za-z_][A-Za-z0-9_]*[ \t]*[=;]" decls "${struct_body}")
set(fields "")
foreach(d IN LISTS decls)
  string(REGEX REPLACE "[ \t]*[=;]$" "" name "${d}")
  # Enumerator initializers (Hello, Little, ...) start uppercase; members
  # are lower_snake_case.
  if(name MATCHES "^[a-z]")
    list(APPEND fields "${name}")
  endif()
endforeach()
list(REMOVE_DUPLICATES fields)

foreach(name IN LISTS fields)
  if(NOT spec MATCHES "${name}")
    list(APPEND missing "Message::${name}")
  endif()
endforeach()

if(missing)
  list(JOIN missing ", " missing_str)
  message(FATAL_ERROR
          "check_protocol_tables: docs/PROTOCOL.md does not mention: "
          "${missing_str}.  Update the frame table / MsgType table to keep "
          "the spec normative.")
endif()

list(LENGTH enumerators n_types)
list(LENGTH fields n_fields)
message(STATUS "check_protocol_tables: ok (${n_types} message types, "
        "${n_fields} header fields all documented)")
