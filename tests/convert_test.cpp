// Tests for the CGT-RMR conversion engine: scalar semantics (sign
// extension, width change, IEEE re-encoding), fast-path selection, and
// whole-image conversion with round-trip properties across every platform
// pair.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "convert/converter.hpp"
#include "convert/xdr.hpp"
#include "platform/float_codec.hpp"
#include "platform/int_codec.hpp"
#include "tags/layout.hpp"
#include "test_util.hpp"

namespace conv = hdsm::conv;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
using tags::FlatRun;
using tags::TypeDesc;

namespace {

std::vector<std::byte> make_image(const tags::Layout& l) {
  return std::vector<std::byte>(l.size);
}

}  // namespace

// ---- convert_run -----------------------------------------------------------

TEST(ConvertRun, SameRepresentationTakesMemcpyPath) {
  std::byte src[16], dst[16];
  for (int i = 0; i < 16; ++i) src[i] = static_cast<std::byte>(i);
  conv::ConversionStats stats;
  conv::convert_run(src, 4, plat::linux_ia32(), dst, 4, plat::linux_ia32(), 4,
                    FlatRun::Cat::SignedInt, plat::ScalarKind::Int, nullptr,
                    &stats);
  EXPECT_EQ(std::memcmp(src, dst, 16), 0);
  EXPECT_EQ(stats.memcpy_runs, 1u);
  EXPECT_EQ(stats.bulk_swap_runs, 0u);
  EXPECT_EQ(stats.elementwise_runs, 0u);
}

TEST(ConvertRun, EndianFlipTakesBulkSwapPath) {
  std::byte src[8], dst[8];
  plat::write_sint(src, 4, plat::Endian::Little, 0x01020304);
  plat::write_sint(src + 4, 4, plat::Endian::Little, -7);
  conv::ConversionStats stats;
  conv::convert_run(src, 4, plat::linux_ia32(), dst, 4,
                    plat::solaris_sparc32(), 2, FlatRun::Cat::SignedInt,
                    plat::ScalarKind::Int, nullptr, &stats);
  EXPECT_EQ(stats.bulk_swap_runs, 1u);
  EXPECT_EQ(plat::read_sint(dst, 4, plat::Endian::Big), 0x01020304);
  EXPECT_EQ(plat::read_sint(dst + 4, 4, plat::Endian::Big), -7);
}

TEST(ConvertRun, WideningSignExtends) {
  // long on IA-32 (4 bytes) -> long on LP64 (8 bytes).
  std::byte src[4], dst[8];
  plat::write_sint(src, 4, plat::Endian::Little, -123456);
  conv::ConversionStats stats;
  conv::convert_run(src, 4, plat::linux_ia32(), dst, 8, plat::linux_x86_64(),
                    1, FlatRun::Cat::SignedInt, plat::ScalarKind::Long,
                    nullptr, &stats);
  EXPECT_EQ(stats.elementwise_runs, 1u);
  EXPECT_EQ(plat::read_sint(dst, 8, plat::Endian::Little), -123456);
}

TEST(ConvertRun, WideningZeroExtendsUnsigned) {
  std::byte src[4], dst[8];
  plat::write_uint(src, 4, plat::Endian::Big, 0xfffffffeu);
  conv::convert_run(src, 4, plat::solaris_sparc32(), dst, 8,
                    plat::solaris_sparc64(), 1, FlatRun::Cat::UnsignedInt,
                    plat::ScalarKind::ULong);
  EXPECT_EQ(plat::read_uint(dst, 8, plat::Endian::Big), 0xfffffffeull);
}

TEST(ConvertRun, NarrowingTruncates) {
  std::byte src[8], dst[4];
  plat::write_sint(src, 8, plat::Endian::Little, -42);  // fits
  conv::convert_run(src, 8, plat::linux_x86_64(), dst, 4, plat::linux_ia32(),
                    1, FlatRun::Cat::SignedInt, plat::ScalarKind::Long);
  EXPECT_EQ(plat::read_sint(dst, 4, plat::Endian::Little), -42);
}

TEST(ConvertRun, FloatAcrossSizesAndFormats) {
  const double v = -1234.015625;  // exactly representable
  // IA-32 x87 long double (12 bytes LE) -> SPARC binary128 (16 bytes BE).
  std::byte src[12], dst[16];
  plat::encode_float(v, src, 12, plat::Endian::Little,
                     plat::LongDoubleFormat::X87Extended);
  conv::ConversionStats stats;
  conv::convert_run(src, 12, plat::linux_ia32(), dst, 16,
                    plat::solaris_sparc32(), 1, FlatRun::Cat::Float,
                    plat::ScalarKind::LongDouble, nullptr, &stats);
  EXPECT_EQ(stats.elementwise_runs, 1u);
  EXPECT_EQ(plat::decode_float(dst, 16, plat::Endian::Big,
                               plat::LongDoubleFormat::Binary128),
            v);
}

TEST(ConvertRun, SameSizeDifferentLongDoubleFormatGoesElementwise) {
  // x86-64 x87-in-16 vs SPARC64 binary128: same size, both need re-encode.
  const double v = 3.5;
  std::byte src[16], dst[16];
  plat::encode_float(v, src, 16, plat::Endian::Little,
                     plat::LongDoubleFormat::X87Extended);
  conv::ConversionStats stats;
  conv::convert_run(src, 16, plat::linux_x86_64(), dst, 16,
                    plat::solaris_sparc64(), 1, FlatRun::Cat::Float,
                    plat::ScalarKind::LongDouble, nullptr, &stats);
  EXPECT_EQ(stats.elementwise_runs, 1u);
  EXPECT_EQ(plat::decode_float(dst, 16, plat::Endian::Big,
                               plat::LongDoubleFormat::Binary128),
            v);
}

TEST(ConvertRun, PointerTranslatorApplied) {
  class PlusOne : public conv::PointerTranslator {
   public:
    std::uint64_t to_token(std::uint64_t raw) const override {
      return raw + 1;
    }
    std::uint64_t from_token(std::uint64_t token) const override {
      return token * 2;
    }
  };
  std::byte src[4], dst[8];
  plat::write_uint(src, 4, plat::Endian::Little, 10);
  PlusOne pt;
  conv::convert_run(src, 4, plat::linux_ia32(), dst, 8, plat::linux_x86_64(),
                    1, FlatRun::Cat::Pointer, plat::ScalarKind::Pointer, &pt);
  EXPECT_EQ(plat::read_uint(dst, 8, plat::Endian::Little), 22u);
}

TEST(ConvertRun, StatsCountBytes) {
  std::byte src[8], dst[16];
  conv::ConversionStats stats;
  conv::convert_run(src, 4, plat::linux_ia32(), dst, 8, plat::linux_x86_64(),
                    2, FlatRun::Cat::SignedInt, plat::ScalarKind::Long,
                    nullptr, &stats);
  EXPECT_EQ(stats.bytes_in, 8u);
  EXPECT_EQ(stats.bytes_out, 16u);
}

// ---- convert_image ---------------------------------------------------------

TEST(ConvertImage, HomogeneousIsWholeMemcpy) {
  auto t = TypeDesc::struct_of("S", {{"a", TypeDesc::array(tags::t_int(), 8)},
                                     {"d", tags::t_double()}});
  const tags::Layout l = tags::compute_layout(t, plat::linux_ia32());
  std::vector<std::byte> src = make_image(l);
  std::mt19937_64 rng(1);
  hdsm::test::fill_random_image(src.data(), l, rng);
  std::vector<std::byte> dst = make_image(l);
  conv::ConversionStats stats;
  conv::convert_image(src.data(), l, dst.data(), l, nullptr, &stats);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(stats.memcpy_runs, 1u);
}

TEST(ConvertImage, MismatchedShapesRejected) {
  auto a = TypeDesc::struct_of("A", {{"x", tags::t_int()}});
  auto b = TypeDesc::struct_of(
      "B", {{"x", tags::t_int()}, {"y", tags::t_int()}});
  const tags::Layout la = tags::compute_layout(a, plat::linux_ia32());
  const tags::Layout lb = tags::compute_layout(b, plat::solaris_sparc32());
  std::vector<std::byte> src = make_image(la);
  std::vector<std::byte> dst = make_image(lb);
  EXPECT_THROW(conv::convert_image(src.data(), la, dst.data(), lb),
               std::invalid_argument);
  EXPECT_FALSE(conv::convertible(la, lb));
}

TEST(ConvertImage, ConvertibleAcceptsReorderedPadding) {
  auto t = TypeDesc::struct_of("S", {{"i", tags::t_int()},
                                     {"d", tags::t_double()}});
  const tags::Layout ia32 = tags::compute_layout(t, plat::linux_ia32());
  const tags::Layout sparc = tags::compute_layout(t, plat::solaris_sparc32());
  // ia32 has no padding run, sparc has one between the fields.
  EXPECT_TRUE(conv::convertible(ia32, sparc));
}

struct PlatformPair {
  const plat::PlatformDesc* a;
  const plat::PlatformDesc* b;
};

class ImageRoundTrip : public ::testing::TestWithParam<PlatformPair> {};

TEST_P(ImageRoundTrip, RandomImagesSurviveThereAndBack) {
  const auto [pa, pb] = GetParam();
  std::mt19937_64 rng(2024);
  for (int iter = 0; iter < 60; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    const tags::Layout la = tags::compute_layout(t, *pa);
    const tags::Layout lb = tags::compute_layout(t, *pb);
    std::vector<std::byte> src = make_image(la);
    hdsm::test::fill_random_image(src.data(), la, rng);

    std::vector<std::byte> mid = make_image(lb);
    conv::convert_image(src.data(), la, mid.data(), lb);
    std::vector<std::byte> back = make_image(la);
    conv::convert_image(mid.data(), lb, back.data(), la);

    // Compare data runs only (src padding may be nonzero noise; the
    // round-trip normalizes padding to zero).
    for (const tags::FlatRun& run : la.runs) {
      if (run.cat == FlatRun::Cat::Padding) continue;
      EXPECT_EQ(std::memcmp(src.data() + run.offset, back.data() + run.offset,
                            run.byte_length()),
                0)
          << t->to_string() << " " << pa->name << "<->" << pb->name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ImageRoundTrip,
    ::testing::Values(
        PlatformPair{&plat::linux_ia32(), &plat::solaris_sparc32()},
        PlatformPair{&plat::linux_ia32(), &plat::linux_x86_64()},
        PlatformPair{&plat::solaris_sparc32(), &plat::solaris_sparc64()},
        PlatformPair{&plat::linux_x86_64(), &plat::solaris_sparc64()},
        PlatformPair{&plat::exotic_packed_be(), &plat::exotic_wide_le()},
        PlatformPair{&plat::linux_ia32(), &plat::exotic_packed_be()},
        PlatformPair{&plat::windows_x64(), &plat::linux_x86_64()},
        PlatformPair{&plat::windows_x64(), &plat::mips64_be()},
        PlatformPair{&plat::mips64_be(), &plat::linux_ia32()}));

TEST(ConvertRun, Llp64LongVsLp64Long) {
  // long: 4 bytes on windows-x64, 8 on linux-x86-64 — same endianness,
  // width change both directions.
  std::byte narrow[4], wide[8];
  plat::write_sint(narrow, 4, plat::Endian::Little, -2021);
  conv::convert_run(narrow, 4, plat::windows_x64(), wide, 8,
                    plat::linux_x86_64(), 1, FlatRun::Cat::SignedInt,
                    plat::ScalarKind::Long);
  EXPECT_EQ(plat::read_sint(wide, 8, plat::Endian::Little), -2021);
  conv::convert_run(wide, 8, plat::linux_x86_64(), narrow, 4,
                    plat::windows_x64(), 1, FlatRun::Cat::SignedInt,
                    plat::ScalarKind::Long);
  EXPECT_EQ(plat::read_sint(narrow, 4, plat::Endian::Little), -2021);
}

TEST(ConvertImage, ValuesSurviveSemantically) {
  auto t = TypeDesc::struct_of("S", {{"p", TypeDesc::pointer()},
                                     {"l", tags::t_long()},
                                     {"d", tags::t_double()},
                                     {"ld", tags::t_longdouble()},
                                     {"c", tags::t_char()}});
  const tags::Layout src_l = tags::compute_layout(t, plat::linux_ia32());
  const tags::Layout dst_l = tags::compute_layout(t, plat::solaris_sparc64());

  std::vector<std::byte> src = make_image(src_l);
  // Fill through codecs on the source platform.
  const auto field_ptr = [&](std::size_t i) {
    return src.data() + src_l.field_offsets[i];
  };
  plat::write_uint(field_ptr(0), 4, plat::Endian::Little, 0x1234);
  plat::write_sint(field_ptr(1), 4, plat::Endian::Little, -99);
  plat::encode_float(2.75, field_ptr(2), 8, plat::Endian::Little,
                     plat::LongDoubleFormat::Binary64);
  plat::encode_float(-8.125, field_ptr(3), 12, plat::Endian::Little,
                     plat::LongDoubleFormat::X87Extended);
  plat::write_sint(field_ptr(4), 1, plat::Endian::Little, -5);

  std::vector<std::byte> dst = make_image(dst_l);
  conv::convert_image(src.data(), src_l, dst.data(), dst_l);

  const auto dfield = [&](std::size_t i) {
    return dst.data() + dst_l.field_offsets[i];
  };
  EXPECT_EQ(plat::read_uint(dfield(0), 8, plat::Endian::Big), 0x1234u);
  EXPECT_EQ(plat::read_sint(dfield(1), 8, plat::Endian::Big), -99);
  EXPECT_EQ(plat::decode_float(dfield(2), 8, plat::Endian::Big,
                               plat::LongDoubleFormat::Binary64),
            2.75);
  EXPECT_EQ(plat::decode_float(dfield(3), 16, plat::Endian::Big,
                               plat::LongDoubleFormat::Binary128),
            -8.125);
  EXPECT_EQ(plat::read_sint(dfield(4), 1, plat::Endian::Big), -5);
}

// ---- XDR baseline ----------------------------------------------------------

TEST(Xdr, CanonicalSizesAreKindBasedAndPlatformFree) {
  using SK = plat::ScalarKind;
  EXPECT_EQ(conv::xdr_elem_size(SK::Char), 4u);
  EXPECT_EQ(conv::xdr_elem_size(SK::Short), 4u);
  EXPECT_EQ(conv::xdr_elem_size(SK::Int), 4u);
  EXPECT_EQ(conv::xdr_elem_size(SK::Long), 8u);
  EXPECT_EQ(conv::xdr_elem_size(SK::LongLong), 8u);
  EXPECT_EQ(conv::xdr_elem_size(SK::Float), 4u);
  EXPECT_EQ(conv::xdr_elem_size(SK::Double), 8u);
  EXPECT_EQ(conv::xdr_elem_size(SK::LongDouble), 8u);
  EXPECT_EQ(conv::xdr_elem_size(SK::Pointer), 8u);
}

TEST(Xdr, CanonicalFormIsBigEndianWidened) {
  // int 1 from a little-endian machine -> 00 00 00 01 on the wire.
  std::byte src[4];
  plat::write_sint(src, 4, plat::Endian::Little, 1);
  std::vector<std::byte> wire;
  conv::xdr_encode_run(src, 4, plat::linux_ia32(), 1,
                       FlatRun::Cat::SignedInt, plat::ScalarKind::Int, wire);
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(wire[0]), 0);
  EXPECT_EQ(std::to_integer<int>(wire[3]), 1);

  // char -128 widens to 4 canonical bytes, sign-extended.
  std::byte c[1];
  plat::write_sint(c, 1, plat::Endian::Little, -128);
  wire.clear();
  conv::xdr_encode_run(c, 1, plat::linux_ia32(), 1, FlatRun::Cat::SignedInt,
                       plat::ScalarKind::Char, wire);
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(plat::read_sint(wire.data(), 4, plat::Endian::Big), -128);
}

TEST(Xdr, RunRoundTripAcrossWidths) {
  // IA-32 long (4 bytes) -> canonical hyper (8) -> SPARC64 long (8 bytes).
  std::byte src[8];
  plat::write_sint(src, 4, plat::Endian::Little, -123456);
  plat::write_sint(src + 4, 4, plat::Endian::Little, 99);
  std::vector<std::byte> wire;
  conv::xdr_encode_run(src, 4, plat::linux_ia32(), 2, FlatRun::Cat::SignedInt,
                       plat::ScalarKind::Long, wire);
  EXPECT_EQ(wire.size(), 16u);
  std::byte dst[16];
  const std::size_t used =
      conv::xdr_decode_run(wire.data(), wire.size(), dst, 8,
                           plat::solaris_sparc64(), 2,
                           FlatRun::Cat::SignedInt, plat::ScalarKind::Long);
  EXPECT_EQ(used, 16u);
  EXPECT_EQ(plat::read_sint(dst, 8, plat::Endian::Big), -123456);
  EXPECT_EQ(plat::read_sint(dst + 8, 8, plat::Endian::Big), 99);
}

TEST(Xdr, DecodeRejectsTruncation) {
  std::byte wire[4] = {};
  std::byte dst[8];
  EXPECT_THROW(conv::xdr_decode_run(wire, 4, dst, 4, plat::linux_ia32(), 2,
                                    FlatRun::Cat::SignedInt,
                                    plat::ScalarKind::Int),
               std::invalid_argument);
}

TEST(Xdr, ImageRoundTripMatchesRmrResultProperty) {
  // Transferring via XDR and via RMR must land identical logical values.
  std::mt19937_64 rng(2026);
  for (int iter = 0; iter < 60; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    const tags::Layout sl = tags::compute_layout(t, plat::solaris_sparc32());
    const tags::Layout dl = tags::compute_layout(t, plat::linux_x86_64());
    std::vector<std::byte> src(sl.size);
    hdsm::test::fill_random_image(src.data(), sl, rng);

    std::vector<std::byte> via_rmr(dl.size);
    conv::convert_image(src.data(), sl, via_rmr.data(), dl);

    std::vector<std::byte> via_xdr(dl.size);
    conv::xdr_decode_image(conv::xdr_encode_image(src.data(), sl),
                           via_xdr.data(), dl);
    EXPECT_EQ(via_rmr, via_xdr) << t->to_string();
  }
}

TEST(Xdr, CanonicalImageWiderThanNativeForSmallScalars) {
  auto t = TypeDesc::struct_of(
      "S", {{"chars", TypeDesc::array(tags::t_char(), 100)}});
  const tags::Layout l = tags::compute_layout(t, plat::linux_ia32());
  std::vector<std::byte> src(l.size);
  EXPECT_EQ(conv::xdr_encode_image(src.data(), l).size(), 400u);  // 4x blowup
}

TEST(Xdr, TrailingBytesRejected) {
  auto t = TypeDesc::struct_of("S", {{"i", tags::t_int()}});
  const tags::Layout l = tags::compute_layout(t, plat::linux_ia32());
  std::vector<std::byte> canonical(8);  // one int needs only 4
  std::vector<std::byte> dst(l.size);
  EXPECT_THROW(conv::xdr_decode_image(canonical, dst.data(), l),
               std::invalid_argument);
}

TEST(ConvertImage, DestinationPaddingZeroed) {
  auto t = TypeDesc::struct_of("S", {{"c", tags::t_char()},
                                     {"d", tags::t_double()}});
  const tags::Layout la = tags::compute_layout(t, plat::linux_ia32());
  const tags::Layout lb = tags::compute_layout(t, plat::solaris_sparc32());
  std::vector<std::byte> src = make_image(la);
  std::vector<std::byte> dst(lb.size, std::byte{0xAA});
  conv::convert_image(src.data(), la, dst.data(), lb);
  for (const tags::FlatRun& run : lb.runs) {
    if (run.cat != FlatRun::Cat::Padding) continue;
    for (std::uint64_t i = 0; i < run.byte_length(); ++i) {
      EXPECT_EQ(std::to_integer<int>(dst[run.offset + i]), 0);
    }
  }
}
