// Randomized protocol stress tests: heterogeneous thread mixes performing
// pseudo-random synchronization patterns, checked against reference
// results and the protocol-trace validator.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "dsm/trace.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;

namespace {

constexpr std::uint64_t kElems = 128;

tags::TypePtr gthv() {
  // A is the main shared array; B is the second buffer of the
  // double-buffered phase test.
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), kElems)},
            {"B", tags::TypeDesc::array(tags::t_longlong(), kElems)}});
}

const plat::PlatformDesc& platform_for(std::uint32_t rank) {
  switch (rank % 4) {
    case 0: return plat::linux_ia32();
    case 1: return plat::solaris_sparc32();
    case 2: return plat::linux_x86_64();
    default: return plat::solaris_sparc64();
  }
}

}  // namespace

TEST(Stress, RandomIncrementsUnderOneLockSumExactly) {
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  constexpr std::uint32_t kRemotes = 4;
  constexpr int kOpsPerThread = 40;

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), platform_for(r), r, home.attach(r)));
  }
  home.start();

  // Expected totals: every thread's op sequence is deterministic.
  std::vector<std::int64_t> expected(kElems, 0);
  const auto ops_of = [](std::uint32_t rank) {
    std::vector<std::pair<std::uint64_t, std::int64_t>> ops;
    std::mt19937_64 rng(1000 + rank);
    for (int i = 0; i < kOpsPerThread; ++i) {
      ops.emplace_back(rng() % kElems,
                       static_cast<std::int64_t>(rng() % 1000) - 500);
    }
    return ops;
  };
  for (std::uint32_t r = 0; r <= kRemotes; ++r) {
    for (const auto& [idx, delta] : ops_of(r)) expected[idx] += delta;
  }

  std::vector<std::thread> threads;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    threads.emplace_back([&, r] {
      dsm::RemoteThread& remote = *remotes[r - 1];
      for (const auto& [idx, delta] : ops_of(r)) {
        remote.lock(0);
        auto a = remote.space().view<std::int64_t>("A");
        a.set(idx, a.get(idx) + delta);
        remote.unlock(0);
      }
      remote.join();
    });
  }
  for (const auto& [idx, delta] : ops_of(0)) {
    home.lock(0);
    auto a = home.space().view<std::int64_t>("A");
    a.set(idx, a.get(idx) + delta);
    home.unlock(0);
  }
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  auto a = home.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Stress, DisjointSegmentsUnderStripedLocks) {
  // Each mutex protects one segment; threads hop between segments in
  // deterministic pseudo-random order.
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  opts.num_locks = 8;
  dsm::HomeNode home(gthv(), plat::solaris_sparc32(), opts);
  constexpr std::uint32_t kRemotes = 3;
  constexpr std::uint64_t kSegments = 8;
  constexpr std::uint64_t kSegLen = kElems / kSegments;

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), platform_for(r + 1), r, home.attach(r)));
  }
  home.start();

  std::vector<std::thread> threads;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    threads.emplace_back([&, r] {
      dsm::RemoteThread& remote = *remotes[r - 1];
      std::mt19937_64 rng(77 * r);
      for (int op = 0; op < 50; ++op) {
        const std::uint32_t seg = static_cast<std::uint32_t>(rng() % kSegments);
        remote.lock(seg);
        auto a = remote.space().view<std::int64_t>("A");
        for (std::uint64_t i = 0; i < kSegLen; ++i) {
          const std::uint64_t e = seg * kSegLen + i;
          a.set(e, a.get(e) + 1);
        }
        remote.unlock(seg);
      }
      remote.join();
    });
  }
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  // Total increments = remotes * ops * segment length, distributed over
  // whichever segments each thread visited; recompute expectation.
  std::vector<std::int64_t> expected(kElems, 0);
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    std::mt19937_64 rng(77 * r);
    for (int op = 0; op < 50; ++op) {
      const std::uint64_t seg = rng() % kSegments;
      for (std::uint64_t i = 0; i < kSegLen; ++i) {
        expected[seg * kSegLen + i] += 1;
      }
    }
  }
  home.lock(0);
  auto a = home.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  home.unlock(0);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Stress, BarrierPhasesDoubleBufferedStencil) {
  // SPMD phases with double buffering (read src, write dst, swap at the
  // barrier).  Single-buffer in-place stencils would be racy for the
  // master thread: the paper propagates remote updates to the base thread
  // eagerly ("updates made by the remote thread are propagated back to the
  // base thread at this time"), so the home image can change mid-phase —
  // double buffering is the correct SPMD idiom here, exactly as on real
  // relaxed-consistency DSMs.
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  constexpr std::uint32_t kRemotes = 2;
  constexpr std::uint32_t kThreads = kRemotes + 1;
  constexpr int kPhases = 12;

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), platform_for(r), r, home.attach(r)));
  }
  home.start();

  const auto phase_work = [&](auto& node, std::uint32_t rank, int phase) {
    auto src = node.space().template view<std::int64_t>(phase % 2 ? "B"
                                                                  : "A");
    auto dst = node.space().template view<std::int64_t>(phase % 2 ? "A"
                                                                  : "B");
    for (std::uint64_t e = 0; e < kElems; ++e) {
      if ((e + static_cast<std::uint64_t>(phase)) % kThreads == rank) {
        const std::int64_t left = e > 0 ? src.get(e - 1) : 0;
        dst.set(e, left + static_cast<std::int64_t>(e) + phase);
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    threads.emplace_back([&, r] {
      dsm::RemoteThread& remote = *remotes[r - 1];
      remote.barrier(0);
      for (int p = 0; p < kPhases; ++p) {
        phase_work(remote, r, p);
        remote.barrier(0);
      }
      remote.join();
    });
  }
  home.barrier(0);
  for (int p = 0; p < kPhases; ++p) {
    phase_work(home, 0, p);
    home.barrier(0);
  }
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  // Serial reference with identical double-buffer semantics.
  std::vector<std::int64_t> a_ref(kElems, 0), b_ref(kElems, 0);
  for (int p = 0; p < kPhases; ++p) {
    std::vector<std::int64_t>& src = p % 2 ? b_ref : a_ref;
    std::vector<std::int64_t>& dst = p % 2 ? a_ref : b_ref;
    for (std::uint64_t e = 0; e < kElems; ++e) {
      const std::int64_t left = e > 0 ? src[e - 1] : 0;
      dst[e] = left + static_cast<std::int64_t>(e) + p;
    }
  }
  auto a = home.space().view<std::int64_t>("A");
  auto b = home.space().view<std::int64_t>("B");
  for (std::uint64_t e = 0; e < kElems; ++e) {
    EXPECT_EQ(a.get(e), a_ref[e]) << "A element " << e;
    EXPECT_EQ(b.get(e), b_ref[e]) << "B element " << e;
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Stress, ThreadChurnJoinAndReplace) {
  // Generations of short-lived remote threads reusing ranks — the adaptive
  // join/leave pattern.
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  home.start();

  for (int generation = 0; generation < 6; ++generation) {
    std::thread worker([&, generation] {
      dsm::RemoteThread remote(gthv(), platform_for(generation), 1,
                               home.attach(1));
      remote.lock(0);
      auto a = remote.space().view<std::int64_t>("A");
      a.set(generation, a.get(generation) + 100 + generation);
      remote.unlock(0);
      remote.join();
    });
    worker.join();
  }
  home.wait_all_joined();
  auto a = home.space().view<std::int64_t>("A");
  for (int g = 0; g < 6; ++g) {
    EXPECT_EQ(a.get(g), 100 + g);
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}
