// Randomized protocol stress tests: heterogeneous thread mixes performing
// pseudo-random synchronization patterns, checked against reference
// results and the protocol-trace validator.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "dsm/trace.hpp"
#include "dsm/update.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;

namespace {

constexpr std::uint64_t kElems = 128;

tags::TypePtr gthv() {
  // A is the main shared array; B is the second buffer of the
  // double-buffered phase test.
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), kElems)},
            {"B", tags::TypeDesc::array(tags::t_longlong(), kElems)}});
}

const plat::PlatformDesc& platform_for(std::uint32_t rank) {
  switch (rank % 4) {
    case 0: return plat::linux_ia32();
    case 1: return plat::solaris_sparc32();
    case 2: return plat::linux_x86_64();
    default: return plat::solaris_sparc64();
  }
}

}  // namespace

TEST(Stress, RandomIncrementsUnderOneLockSumExactly) {
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  constexpr std::uint32_t kRemotes = 4;
  constexpr int kOpsPerThread = 40;

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), platform_for(r), r, home.attach(r)));
  }
  home.start();

  // Expected totals: every thread's op sequence is deterministic.
  std::vector<std::int64_t> expected(kElems, 0);
  const auto ops_of = [](std::uint32_t rank) {
    std::vector<std::pair<std::uint64_t, std::int64_t>> ops;
    std::mt19937_64 rng(1000 + rank);
    for (int i = 0; i < kOpsPerThread; ++i) {
      ops.emplace_back(rng() % kElems,
                       static_cast<std::int64_t>(rng() % 1000) - 500);
    }
    return ops;
  };
  for (std::uint32_t r = 0; r <= kRemotes; ++r) {
    for (const auto& [idx, delta] : ops_of(r)) expected[idx] += delta;
  }

  std::vector<std::thread> threads;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    threads.emplace_back([&, r] {
      dsm::RemoteThread& remote = *remotes[r - 1];
      for (const auto& [idx, delta] : ops_of(r)) {
        remote.lock(0);
        auto a = remote.space().view<std::int64_t>("A");
        a.set(idx, a.get(idx) + delta);
        remote.unlock(0);
      }
      remote.join();
    });
  }
  for (const auto& [idx, delta] : ops_of(0)) {
    home.lock(0);
    auto a = home.space().view<std::int64_t>("A");
    a.set(idx, a.get(idx) + delta);
    home.unlock(0);
  }
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  auto a = home.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Stress, DisjointSegmentsUnderStripedLocks) {
  // Each mutex protects one segment; threads hop between segments in
  // deterministic pseudo-random order.
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  opts.num_locks = 8;
  dsm::HomeNode home(gthv(), plat::solaris_sparc32(), opts);
  constexpr std::uint32_t kRemotes = 3;
  constexpr std::uint64_t kSegments = 8;
  constexpr std::uint64_t kSegLen = kElems / kSegments;

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), platform_for(r + 1), r, home.attach(r)));
  }
  home.start();

  std::vector<std::thread> threads;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    threads.emplace_back([&, r] {
      dsm::RemoteThread& remote = *remotes[r - 1];
      std::mt19937_64 rng(77 * r);
      for (int op = 0; op < 50; ++op) {
        const std::uint32_t seg = static_cast<std::uint32_t>(rng() % kSegments);
        remote.lock(seg);
        auto a = remote.space().view<std::int64_t>("A");
        for (std::uint64_t i = 0; i < kSegLen; ++i) {
          const std::uint64_t e = seg * kSegLen + i;
          a.set(e, a.get(e) + 1);
        }
        remote.unlock(seg);
      }
      remote.join();
    });
  }
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  // Total increments = remotes * ops * segment length, distributed over
  // whichever segments each thread visited; recompute expectation.
  std::vector<std::int64_t> expected(kElems, 0);
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    std::mt19937_64 rng(77 * r);
    for (int op = 0; op < 50; ++op) {
      const std::uint64_t seg = rng() % kSegments;
      for (std::uint64_t i = 0; i < kSegLen; ++i) {
        expected[seg * kSegLen + i] += 1;
      }
    }
  }
  home.lock(0);
  auto a = home.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  home.unlock(0);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Stress, BarrierPhasesDoubleBufferedStencil) {
  // SPMD phases with double buffering (read src, write dst, swap at the
  // barrier).  Single-buffer in-place stencils would be racy for the
  // master thread: the paper propagates remote updates to the base thread
  // eagerly ("updates made by the remote thread are propagated back to the
  // base thread at this time"), so the home image can change mid-phase —
  // double buffering is the correct SPMD idiom here, exactly as on real
  // relaxed-consistency DSMs.
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  constexpr std::uint32_t kRemotes = 2;
  constexpr std::uint32_t kThreads = kRemotes + 1;
  constexpr int kPhases = 12;

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), platform_for(r), r, home.attach(r)));
  }
  home.start();

  const auto phase_work = [&](auto& node, std::uint32_t rank, int phase) {
    auto src = node.space().template view<std::int64_t>(phase % 2 ? "B"
                                                                  : "A");
    auto dst = node.space().template view<std::int64_t>(phase % 2 ? "A"
                                                                  : "B");
    for (std::uint64_t e = 0; e < kElems; ++e) {
      if ((e + static_cast<std::uint64_t>(phase)) % kThreads == rank) {
        const std::int64_t left = e > 0 ? src.get(e - 1) : 0;
        dst.set(e, left + static_cast<std::int64_t>(e) + phase);
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::uint32_t r = 1; r <= kRemotes; ++r) {
    threads.emplace_back([&, r] {
      dsm::RemoteThread& remote = *remotes[r - 1];
      remote.barrier(0);
      for (int p = 0; p < kPhases; ++p) {
        phase_work(remote, r, p);
        remote.barrier(0);
      }
      remote.join();
    });
  }
  home.barrier(0);
  for (int p = 0; p < kPhases; ++p) {
    phase_work(home, 0, p);
    home.barrier(0);
  }
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  // Serial reference with identical double-buffer semantics.
  std::vector<std::int64_t> a_ref(kElems, 0), b_ref(kElems, 0);
  for (int p = 0; p < kPhases; ++p) {
    std::vector<std::int64_t>& src = p % 2 ? b_ref : a_ref;
    std::vector<std::int64_t>& dst = p % 2 ? a_ref : b_ref;
    for (std::uint64_t e = 0; e < kElems; ++e) {
      const std::int64_t left = e > 0 ? src[e - 1] : 0;
      dst[e] = left + static_cast<std::int64_t>(e) + p;
    }
  }
  auto a = home.space().view<std::int64_t>("A");
  auto b = home.space().view<std::int64_t>("B");
  for (std::uint64_t e = 0; e < kElems; ++e) {
    EXPECT_EQ(a.get(e), a_ref[e]) << "A element " << e;
    EXPECT_EQ(b.get(e), b_ref[e]) << "B element " << e;
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Stress, ThreadChurnJoinAndReplace) {
  // Generations of short-lived remote threads reusing ranks — the adaptive
  // join/leave pattern.
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  home.start();

  for (int generation = 0; generation < 6; ++generation) {
    std::thread worker([&, generation] {
      dsm::RemoteThread remote(gthv(), platform_for(generation), 1,
                               home.attach(1));
      remote.lock(0);
      auto a = remote.space().view<std::int64_t>("A");
      a.set(generation, a.get(generation) + 100 + generation);
      remote.unlock(0);
      remote.join();
    });
    worker.join();
  }
  home.wait_all_joined();
  auto a = home.space().view<std::int64_t>("A");
  for (int g = 0; g < 6; ++g) {
    EXPECT_EQ(a.get(g), 100 + g);
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

// Long-run regression for the granted_gen growth fix: a remote that
// repeatedly crashes while holding a mutex leaves one reset-recovery
// window open per crash.  Windows must close on regrant, so the count can
// never exceed the mutex count — and a second rank cycling through every
// mutex must drive the first rank's count to exactly zero.
TEST(Stress, RecoveryWindowsStayBoundedAcrossCrashCycles) {
  constexpr std::uint32_t kLocks = 16;
  dsm::HomeOptions opts;
  opts.num_locks = kLocks;
  dsm::HomeNode home(gthv(), plat::linux_x86_64(), opts);
  home.start();

  const auto summary = msg::PlatformSummary::of(home.space().platform());
  const std::string tag = home.space().image_tag_text();

  // Rank 1: 3 crash cycles per mutex, always dying while holding.  Raw
  // messages (no RemoteThread) so the "crash" is a plain endpoint close
  // with the lock held and the unlock forever outstanding.
  std::uint32_t seq = 0;
  for (std::uint32_t cycle = 0; cycle < 3 * kLocks; ++cycle) {
    msg::EndpointPtr ep = home.attach(1);
    msg::Message hello;
    hello.type = msg::MsgType::Hello;
    hello.rank = 1;
    // First Hello is a fresh incarnation; later ones resume (same epoch,
    // nonzero seq) so the recovery windows persist across reconnects.
    hello.seq = cycle == 0 ? 0 : seq;
    hello.sync_id = 5;
    hello.sender = summary;
    hello.tag = tag;
    ep->send(hello);

    msg::Message req;
    req.type = msg::MsgType::LockRequest;
    req.rank = 1;
    req.seq = ++seq;
    req.sync_id = cycle % kLocks;
    req.sender = summary;
    ep->send(req);
    const msg::Message grant = ep->recv();
    ASSERT_EQ(grant.type, msg::MsgType::LockGrant);
    ep->close();  // crash while holding

    ASSERT_LE(home.recovery_entries(1), kLocks) << "cycle " << cycle;
  }
  // Re-granting a mutex to rank 1 overwrites its own window, so after 3
  // passes over every mutex there is exactly one window per mutex.
  EXPECT_EQ(home.recovery_entries(1), kLocks);

  // Rank 2 cycles through every mutex: each grant closes rank 1's window
  // for that mutex (its stale recovery diffs could never be honored again).
  msg::EndpointPtr ep2 = home.attach(2);
  msg::Message hello2;
  hello2.type = msg::MsgType::Hello;
  hello2.rank = 2;
  hello2.seq = 0;
  hello2.sync_id = 7;
  hello2.sender = summary;
  hello2.tag = tag;
  ep2->send(hello2);
  std::uint32_t seq2 = 0;
  for (std::uint32_t m = 0; m < kLocks; ++m) {
    msg::Message req;
    req.type = msg::MsgType::LockRequest;
    req.rank = 2;
    req.seq = ++seq2;
    req.sync_id = m;
    req.sender = summary;
    ep2->send(req);
    ASSERT_EQ(ep2->recv().type, msg::MsgType::LockGrant);

    msg::Message unlock;
    unlock.type = msg::MsgType::UnlockRequest;
    unlock.rank = 2;
    unlock.seq = ++seq2;
    unlock.sync_id = m;
    unlock.sender = summary;
    unlock.payload = dsm::encode_update_blocks({});
    ep2->send(unlock);
    ASSERT_EQ(ep2->recv().type, msg::MsgType::UnlockAck);
  }
  EXPECT_EQ(home.recovery_entries(1), 0u);
  EXPECT_LE(home.recovery_entries(2), kLocks);
  ep2->close();
  home.stop();
}
