// Pure obs-library semantics: instruments, histogram bucket math, snapshot
// merge/serialize invariants, the flight-recorder ring (overflow + drop
// accounting), the Chrome-trace exporter, the cluster aggregator's
// incarnation-epoch handling — plus a writers-vs-snapshotter concurrency
// test that the TSan `faults` run exercises.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"

namespace obs = hdsm::obs;

// ---------------------------------------------------------------------------
// Instruments

TEST(Counter, AddAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddValue) {
  obs::Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(Histogram, BucketMathInvariants) {
  // Every value lands in a bucket whose lower bound is <= the value, the
  // next bucket's lower bound is > the value, and the lower bound is within
  // 25% of the value (the log-linear error budget of kSubBits = 2).
  std::vector<std::uint64_t> probes = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17};
  for (unsigned shift = 5; shift < 64; ++shift) {
    const std::uint64_t base = 1ull << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + base / 3);
  }
  probes.push_back(~0ull);
  for (const std::uint64_t v : probes) {
    const unsigned i = obs::Histogram::bucket_of(v);
    ASSERT_LT(i, obs::Histogram::kBuckets) << "v=" << v;
    const std::uint64_t lo = obs::Histogram::bucket_lower_bound(i);
    EXPECT_LE(lo, v) << "v=" << v;
    if (i + 1 < obs::Histogram::kBuckets) {
      EXPECT_GT(obs::Histogram::bucket_lower_bound(i + 1), v) << "v=" << v;
    }
    if (v > 0) {
      EXPECT_LE(v - lo, v / 4 + 1) << "v=" << v << " lo=" << lo;
    }
  }
}

TEST(Histogram, BucketLowerBoundsStrictlyIncrease) {
  for (unsigned i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_GT(obs::Histogram::bucket_lower_bound(i),
              obs::Histogram::bucket_lower_bound(i - 1))
        << "i=" << i;
  }
}

TEST(Histogram, RecordCountSum) {
  obs::Histogram h;
  h.record(10);
  h.record(1000);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 2010u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_of(1000)), 2u);
}

// ---------------------------------------------------------------------------
// Snapshots: merge preserves totals; quantiles; wire form

namespace {

obs::HistogramSnapshot snap_of(std::initializer_list<std::uint64_t> values) {
  obs::Histogram h;
  for (const std::uint64_t v : values) h.record(v);
  obs::HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  for (unsigned i = 0; i < obs::Histogram::kBuckets; ++i) {
    if (h.bucket(i) != 0) s.buckets.emplace_back(i, h.bucket(i));
  }
  return s;
}

std::uint64_t total_bucket_count(const obs::HistogramSnapshot& s) {
  std::uint64_t n = 0;
  for (const auto& [idx, c] : s.buckets) n += c;
  return n;
}

}  // namespace

TEST(HistogramSnapshot, MergePreservesCountAndBucketSums) {
  obs::HistogramSnapshot a = snap_of({1, 5, 100, 100000});
  obs::HistogramSnapshot b = snap_of({5, 7, 1u << 20});
  const std::uint64_t count = a.count + b.count;
  const std::uint64_t sum = a.sum + b.sum;
  const std::uint64_t buckets = total_bucket_count(a) + total_bucket_count(b);

  a.merge(b);
  EXPECT_EQ(a.count, count);
  EXPECT_EQ(a.sum, sum);
  EXPECT_EQ(total_bucket_count(a), buckets);
  // Ascending, no duplicate indices.
  for (std::size_t i = 1; i < a.buckets.size(); ++i) {
    EXPECT_LT(a.buckets[i - 1].first, a.buckets[i].first);
  }
  // Merge equals "one histogram recorded everything".
  EXPECT_EQ(a, snap_of({1, 5, 100, 100000, 5, 7, 1u << 20}));
}

TEST(HistogramSnapshot, Quantile) {
  obs::HistogramSnapshot s = snap_of({10, 10, 10, 10, 10, 10, 10, 10, 10,
                                      1000000});
  // p50 sits in the bucket holding the 10s; p100 in the outlier's bucket.
  EXPECT_LE(s.quantile(0.5), 10u);
  EXPECT_GE(s.quantile(1.0),
            obs::Histogram::bucket_lower_bound(
                obs::Histogram::bucket_of(1000000)));
  EXPECT_EQ(obs::HistogramSnapshot{}.quantile(0.5), 0u);
}

TEST(MetricsSnapshot, MergeSumsEveryKind) {
  obs::MetricsSnapshot a;
  a.counters["x"] = 3;
  a.gauges["g"] = -2;
  a.histograms["h"] = snap_of({4});
  obs::MetricsSnapshot b;
  b.counters["x"] = 7;
  b.counters["y"] = 1;
  b.gauges["g"] = 5;
  b.histograms["h"] = snap_of({8});

  a.merge(b);
  EXPECT_EQ(a.counters["x"], 10u);
  EXPECT_EQ(a.counters["y"], 1u);
  EXPECT_EQ(a.gauges["g"], 3);
  EXPECT_EQ(a.histograms["h"], snap_of({4, 8}));
}

TEST(MetricsSnapshot, SerializeRoundTrip) {
  obs::MetricsSnapshot a;
  a.counters["stats.locks"] = 12;
  a.counters["event.retry"] = 0;
  a.gauges["lanes"] = 4;
  a.histograms["phase.diff.ns"] = snap_of({100, 2000, 30000, ~0ull});

  std::vector<std::uint8_t> wire;
  a.serialize(wire);
  obs::MetricsSnapshot back;
  ASSERT_TRUE(obs::MetricsSnapshot::deserialize(wire.data(), wire.size(),
                                                back));
  EXPECT_EQ(a, back);
}

TEST(MetricsSnapshot, DeserializeRejectsMalformed) {
  obs::MetricsSnapshot a;
  a.counters["c"] = 1;
  a.histograms["h"] = snap_of({5, 50});
  std::vector<std::uint8_t> wire;
  a.serialize(wire);

  obs::MetricsSnapshot out;
  // Empty, truncation at every prefix, and trailing garbage all fail —
  // never crash, never partially succeed silently.
  EXPECT_FALSE(obs::MetricsSnapshot::deserialize(nullptr, 0, out));
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        obs::MetricsSnapshot::deserialize(wire.data(), wire.size() - cut, out))
        << "cut=" << cut;
  }
  std::vector<std::uint8_t> padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(
      obs::MetricsSnapshot::deserialize(padded.data(), padded.size(), out));
  std::vector<std::uint8_t> bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(obs::MetricsSnapshot::deserialize(bad_magic.data(),
                                                 bad_magic.size(), out));
}

TEST(MetricsSnapshot, JsonAndCsvCarryEveryInstrument) {
  obs::MetricsSnapshot a;
  a.counters["locks"] = 7;
  a.gauges["depth"] = -1;
  a.histograms["lat"] = snap_of({10, 20});
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"locks\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":-1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  const std::string csv = a.to_csv();
  EXPECT_NE(csv.find("locks,7"), std::string::npos) << csv;
  EXPECT_NE(csv.find("lat.count,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("lat.sum,30"), std::string::npos) << csv;
}

TEST(Registry, FindOrCreateReturnsStableRefs) {
  obs::Registry r;
  obs::Counter& c1 = r.counter("a");
  obs::Counter& c2 = r.counter("a");
  EXPECT_EQ(&c1, &c2);
  c1.add(5);
  r.gauge("g").set(9);
  r.histogram("h").record(123);
  const obs::MetricsSnapshot s = r.snapshot();
  EXPECT_EQ(s.counters.at("a"), 5u);
  EXPECT_EQ(s.gauges.at("g"), 9);
  EXPECT_EQ(s.histograms.at("h").count, 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(SpanRing, PushSnapshotInOrder) {
  obs::SpanRing ring(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.push(100 * i, 10, obs::SpanKind::Diff, i);
  }
  std::vector<obs::SpanRecord> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].start_ns, 100 * i);
    EXPECT_EQ(out[i].dur_ns, 10u);
    EXPECT_EQ(out[i].id, i);
    EXPECT_EQ(out[i].kind, obs::SpanKind::Diff);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpanRing, OverflowOverwritesOldestAndCountsDrops) {
  obs::SpanRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  const std::uint64_t total = 8 + 5;
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.push(i, 1, obs::SpanKind::Episode, i);
  }
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.dropped(), total - 8);
  std::vector<obs::SpanRecord> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 8u);
  // Oldest retrievable record is #5 (0..4 were overwritten).
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, total - 8 + i);
  }
}

TEST(SpanRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::SpanRing(1).capacity(), 8u);   // minimum
  EXPECT_EQ(obs::SpanRing(9).capacity(), 16u);  // round up
  EXPECT_EQ(obs::SpanRing(64).capacity(), 64u);
}

TEST(FlightRecorder, LanePerThreadWithLabels) {
  obs::FlightRecorder rec(32);
  rec.set_thread_label("main-lane");
  rec.ring().push(1, 2, obs::SpanKind::Episode, 0);
  std::thread t([&] {
    rec.set_thread_label("worker-lane");
    rec.ring().push(3, 4, obs::SpanKind::Diff, 1);
    rec.ring().push(5, 6, obs::SpanKind::Diff, 2);
  });
  t.join();
  const obs::RecorderSnapshot s = rec.snapshot();
  ASSERT_EQ(s.lanes.size(), 2u);
  EXPECT_EQ(s.lanes[0].lane, 0u);
  EXPECT_EQ(s.lanes[1].lane, 1u);
  EXPECT_EQ(s.lanes[0].label, "main-lane");
  EXPECT_EQ(s.lanes[1].label, "worker-lane");
  EXPECT_EQ(s.lanes[0].spans.size(), 1u);
  EXPECT_EQ(s.lanes[1].spans.size(), 2u);
  EXPECT_EQ(s.total_spans(), 3u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(FlightRecorder, TlsCacheDistinguishesRecorders) {
  // Two recorders used from the same thread must not share a ring: the TLS
  // cache is keyed on a process-unique recorder id.
  obs::FlightRecorder a(16), b(16);
  a.ring().push(1, 1, obs::SpanKind::Episode, 0);
  b.ring().push(2, 2, obs::SpanKind::Diff, 0);
  b.ring().push(3, 3, obs::SpanKind::Diff, 0);
  EXPECT_EQ(a.snapshot().total_spans(), 1u);
  EXPECT_EQ(b.snapshot().total_spans(), 2u);
}

// ---------------------------------------------------------------------------
// Telemetry bundle

TEST(Telemetry, RecordPhaseFeedsHistogramAndRing) {
  obs::ObsOptions opts;
  opts.enabled = true;
  opts.ring_capacity = 64;
  obs::Telemetry t(opts);
  t.set_thread_label("test");
  t.record_phase(obs::SpanKind::Diff, 1000, 250, 3);
  t.event(obs::SpanKind::Retry, 7);

  const obs::MetricsSnapshot m = t.metrics();
  EXPECT_EQ(m.histograms.at("phase.diff.ns").count, 1u);
  EXPECT_EQ(m.histograms.at("phase.diff.ns").sum, 250u);
  EXPECT_EQ(m.counters.at("event.retry"), 1u);
  EXPECT_EQ(m.counters.at("obs.spans_pushed"), 2u);
  EXPECT_EQ(m.counters.at("obs.spans_dropped"), 0u);

  const obs::RecorderSnapshot s = t.spans();
  ASSERT_EQ(s.total_spans(), 2u);
  EXPECT_EQ(s.lanes[0].spans[0].kind, obs::SpanKind::Diff);
  EXPECT_EQ(s.lanes[0].spans[1].kind, obs::SpanKind::Retry);
  EXPECT_EQ(s.lanes[0].spans[1].dur_ns, 0u);
}

TEST(Telemetry, MetricsOnlyModeRecordsNoSpans) {
  obs::ObsOptions opts;
  opts.enabled = true;
  opts.record_spans = false;
  obs::Telemetry t(opts);
  t.record_phase(obs::SpanKind::Pack, 0, 99);
  EXPECT_EQ(t.metrics().histograms.at("phase.pack.ns").count, 1u);
  EXPECT_EQ(t.spans().total_spans(), 0u);
}

TEST(SpanScope, NullTelemetryIsANoop) {
  { obs::SpanScope s(nullptr, obs::SpanKind::Episode); }
  obs::ObsOptions opts;
  opts.enabled = true;
  obs::Telemetry t(opts);
  { obs::SpanScope s(&t, obs::SpanKind::Episode, 42); }
  const obs::RecorderSnapshot snap = t.spans();
  ASSERT_EQ(snap.total_spans(), 1u);
  EXPECT_EQ(snap.lanes[0].spans[0].id, 42u);
}

TEST(ScopedTimer, MonotonicAndRestartable) {
  obs::ScopedTimer timer;
  const std::uint64_t a = obs::ScopedTimer::now_ns();
  const std::uint64_t b = obs::ScopedTimer::now_ns();
  EXPECT_GE(b, a);
  (void)timer.lap();  // restarts: start_ns moves to now
  EXPECT_GE(timer.start_ns(), a);
  const std::uint64_t elapsed = timer.elapsed_ns();
  const std::uint64_t later = obs::ScopedTimer::now_ns();  // strictly after
  EXPECT_LE(timer.start_ns() + elapsed, later);
}

// ---------------------------------------------------------------------------
// Chrome trace exporter

TEST(ChromeTrace, EmitsLanesMetadataAndEvents) {
  obs::ObsOptions opts;
  opts.enabled = true;
  obs::Telemetry t(opts);
  t.set_thread_label("master");
  t.record_phase(obs::SpanKind::Episode, 5000, 1500, 1);
  t.event(obs::SpanKind::Retry, 2);

  obs::NodeTrace node;
  node.rank = 0;
  node.name = "home";
  node.spans = t.spans();
  const std::string json = obs::chrome_trace_json({node});

  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"home\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"master\""), std::string::npos) << json;
  // The complete event: 1500 ns = 1.500 µs, normalized to ts 0.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"episode\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos) << json;
  // The instant event.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"retry\""), std::string::npos) << json;
}

TEST(ChromeTrace, DistinctPidPerRank) {
  obs::NodeTrace a, b;
  a.rank = 0;
  a.name = "home";
  b.rank = 1;
  b.name = "remote-1";
  obs::LaneSnapshot lane;
  lane.lane = 0;
  lane.label = "x";
  lane.spans.push_back({10, 5, 0, obs::SpanKind::Diff});
  a.spans.lanes.push_back(lane);
  b.spans.lanes.push_back(lane);
  const std::string json = obs::chrome_trace_json({a, b});
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
}

TEST(ChromeTrace, EmptyInputStillValidJson) {
  EXPECT_EQ(obs::chrome_trace_json({}), "{\"traceEvents\":[]}");
}

// ---------------------------------------------------------------------------
// Cluster aggregation + wire forms

TEST(ClusterAggregator, ViewMergesEveryCounter) {
  obs::ClusterAggregator agg;
  obs::NodeSnapshot r1;
  r1.rank = 1;
  r1.epoch = 11;
  r1.metrics.counters["stats.locks"] = 3;
  r1.metrics.histograms["lat"] = snap_of({100});
  obs::NodeSnapshot r2;
  r2.rank = 2;
  r2.epoch = 22;
  r2.metrics.counters["stats.locks"] = 4;
  r2.metrics.histograms["lat"] = snap_of({200, 300});
  agg.report(r1);
  agg.report(r2);

  obs::NodeSnapshot home;
  home.rank = 0;
  home.metrics.counters["stats.locks"] = 5;
  const obs::ClusterTelemetry ct = agg.view(home);
  ASSERT_EQ(ct.nodes.size(), 3u);
  EXPECT_TRUE(ct.retired.empty());
  EXPECT_EQ(ct.merged.counters.at("stats.locks"), 12u);
  EXPECT_EQ(ct.merged.histograms.at("lat"), snap_of({100, 200, 300}));
}

TEST(ClusterAggregator, NewEpochArchivesOldIncarnation) {
  obs::ClusterAggregator agg;
  obs::NodeSnapshot first;
  first.rank = 1;
  first.epoch = 100;
  first.metrics.counters["stats.retries"] = 9;
  agg.report(first);

  obs::NodeSnapshot again = first;  // same incarnation re-reports
  again.metrics.counters["stats.retries"] = 12;
  agg.report(again);

  obs::NodeSnapshot reborn;  // reconnected under a fresh epoch
  reborn.rank = 1;
  reborn.epoch = 101;
  reborn.metrics.counters["stats.retries"] = 2;
  agg.report(reborn);

  const obs::ClusterTelemetry ct = agg.view(obs::NodeSnapshot{});
  ASSERT_EQ(ct.retired.size(), 1u);
  EXPECT_EQ(ct.retired[0].epoch, 100u);
  // The retired incarnation keeps its *last* snapshot (12, not 9): the
  // merged total is 12 + 2, and the per-incarnation delta is recoverable.
  EXPECT_EQ(ct.retired[0].metrics.counters.at("stats.retries"), 12u);
  EXPECT_EQ(ct.merged.counters.at("stats.retries"), 14u);
}

TEST(ClusterTelemetry, SerializeRoundTripRecomputesMerged) {
  obs::ClusterAggregator agg;
  obs::NodeSnapshot r1;
  r1.rank = 1;
  r1.epoch = 7;
  r1.metrics.counters["c"] = 6;
  agg.report(r1);
  obs::NodeSnapshot home;
  home.rank = 0;
  home.metrics.counters["c"] = 1;
  const obs::ClusterTelemetry ct = agg.view(home);

  std::vector<std::uint8_t> wire;
  ct.serialize(wire);
  obs::ClusterTelemetry back;
  ASSERT_TRUE(
      obs::ClusterTelemetry::deserialize(wire.data(), wire.size(), back));
  ASSERT_EQ(back.nodes.size(), 2u);
  EXPECT_EQ(back.nodes[1].epoch, 7u);
  EXPECT_EQ(back.merged.counters.at("c"), 7u);
  EXPECT_EQ(back.merged, ct.merged);

  obs::ClusterTelemetry out;
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(obs::ClusterTelemetry::deserialize(wire.data(),
                                                    wire.size() - cut, out));
  }
}

TEST(NodeSnapshot, DeserializeRejectsLengthMismatch) {
  obs::NodeSnapshot n;
  n.rank = 3;
  n.epoch = 5;
  n.metrics.counters["c"] = 1;
  std::vector<std::uint8_t> wire;
  n.serialize(wire);
  obs::NodeSnapshot out;
  ASSERT_TRUE(obs::NodeSnapshot::deserialize(wire.data(), wire.size(), out));
  EXPECT_EQ(out.rank, 3u);
  wire.push_back(0);  // trailing byte ⇒ embedded length no longer matches
  EXPECT_FALSE(obs::NodeSnapshot::deserialize(wire.data(), wire.size(), out));
}

// ---------------------------------------------------------------------------
// Concurrency (meaningful under TSan: ctest -L faults in build-tsan)

TEST(ObsConcurrency, WritersVsSnapshotters) {
  obs::ObsOptions opts;
  opts.enabled = true;
  opts.ring_capacity = 64;  // small: force constant overwrite
  obs::Telemetry t(opts);

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&t, w] {
      t.set_thread_label("writer-" + std::to_string(w));
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        t.record_phase(obs::SpanKind::Diff, i, i % 97, i);
        if (i % 3 == 0) t.event(obs::SpanKind::Retry, i);
      }
    });
  }
  std::thread snapshotter([&t, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::RecorderSnapshot s = t.spans();
      for (const auto& lane : s.lanes) {
        for (const obs::SpanRecord& r : lane.spans) {
          // A torn read would show a kind outside the enum.
          ASSERT_LT(static_cast<std::size_t>(r.kind), obs::kSpanKindCount);
        }
      }
      (void)t.metrics();
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  const obs::MetricsSnapshot m = t.metrics();
  const std::uint64_t expected_spans =
      kWriters * (kPerWriter + (kPerWriter + 2) / 3);
  EXPECT_EQ(m.counters.at("obs.spans_pushed"), expected_spans);
  EXPECT_EQ(m.histograms.at("phase.diff.ns").count, kWriters * kPerWriter);
  // Rings hold 64 slots each: nearly everything was dropped, and the drop
  // accounting balances exactly.
  const obs::RecorderSnapshot s = t.spans();
  EXPECT_EQ(m.counters.at("obs.spans_dropped"),
            expected_spans - kWriters * 64);
  EXPECT_EQ(s.total_spans(), static_cast<std::size_t>(kWriters) * 64);
}

TEST(ObsConcurrency, RegistryFindOrCreateRace) {
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&reg] {
      for (int k = 0; k < 1000; ++k) {
        reg.counter("shared").add();
        reg.histogram("h" + std::to_string(k % 5)).record(k);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counters.at("shared"), 8000u);
}
