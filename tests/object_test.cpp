// Object-granularity sharing mode (hdsm::obj, docs/OBJECTS.md): golden
// object-id placements, layout/stripe/row consistency across platforms,
// dirty-object tracking, and the million-object-style KV workload running
// exactly-once in both page and object mode — including with the adaptive
// engine on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "obj/object_dsm.hpp"
#include "obj/object_space.hpp"
#include "workloads/kv.hpp"

namespace obj = hdsm::obj;
namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace work = hdsm::work;
namespace idx = hdsm::idx;

namespace {

obj::ObjectLayoutPtr small_layout(std::uint32_t regions = 4) {
  obj::ObjectLayoutConfig cfg;
  cfg.num_regions = regions;
  cfg.classes.push_back({"sess", tags::t_int(), 4, 64});
  cfg.classes.push_back({"ctr", tags::t_longlong(), 1, 16});
  return std::make_shared<const obj::ObjectLayout>(std::move(cfg));
}

work::KvConfig small_kv() {
  work::KvConfig cfg;
  cfg.num_objects = 2000;
  cfg.words = 4;
  cfg.num_regions = 8;
  cfg.ops_per_rank = 250;
  cfg.theta = 0.99;
  cfg.seed = 7;
  cfg.remotes = {&plat::linux_ia32(), &plat::solaris_sparc64()};
  return cfg;
}

}  // namespace

// ---- id namespace + placement ----------------------------------------------

TEST(ObjectLayout, GoldenObjectIdPlacementsArePinned) {
  // FNV-1a (64-bit, offset 0xcbf29ce484222325, prime 0x100000001b3) over
  // the object id's eight little-endian bytes, xor-folded, mod num_regions
  // — the 64-bit twin of ShardMap::hash_shard, and like it part of the
  // wire protocol: every node, whatever its platform or standard library,
  // must stripe objects identically (never std::hash).  If this test
  // fails, the hash changed and mixed-version clusters will corrupt
  // object→region→shard routing — bump the protocol instead.
  const auto id = [](std::uint32_t cls, std::uint64_t index) {
    return (static_cast<std::uint64_t>(cls + 1) << 48) | index;
  };
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 0), 2), 0u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 4), 2), 1u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 0), 4), 2u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 1), 4), 0u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 100), 16), 7u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 1000), 16), 7u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(1, 0), 16), 5u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(1, 5), 16), 6u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 0), 64), 46u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 1), 64), 36u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 2), 64), 26u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, 999999), 64), 57u);
  EXPECT_EQ(obj::ObjectLayout::hash_region(id(2, 123456), 64), 46u);
  // One region: everything lands on region 0.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(obj::ObjectLayout::hash_region(id(0, i), 1), 0u);
  }
}

TEST(ObjectLayout, IdNamespaceRoundTrips) {
  const auto layout = small_layout();
  const std::uint64_t id = layout->object_id(1, 7);
  EXPECT_EQ(id, (std::uint64_t{2} << 48) | 7u);
  EXPECT_EQ(obj::ObjectLayout::class_of_id(id), 1u);
  EXPECT_EQ(obj::ObjectLayout::index_of_id(id), 7u);
  EXPECT_THROW(layout->object_id(0, 64), std::out_of_range);
  EXPECT_THROW(layout->object_id(2, 0), std::out_of_range);
}

TEST(ObjectLayout, StripesRowsAndSlotsAreConsistent) {
  const auto layout = small_layout();
  // Every object's region matches the pinned hash; slots number the
  // objects of a (class, region) stripe densely from zero.
  for (std::uint32_t c = 0; c < layout->num_classes(); ++c) {
    std::vector<std::uint32_t> next_slot(layout->num_regions(), 0);
    for (std::uint64_t i = 0; i < layout->cls(c).count; ++i) {
      const std::uint32_t r = layout->region_of(c, i);
      EXPECT_EQ(r, obj::ObjectLayout::hash_region(layout->object_id(c, i),
                                                  layout->num_regions()));
      EXPECT_EQ(layout->slot_of(c, i), next_slot[r]++);
    }
    for (std::uint32_t r = 0; r < layout->num_regions(); ++r) {
      EXPECT_EQ(layout->slots_in(c, r), next_slot[r]);
    }
  }
  // Row positions are platform-independent: the same (class, region)
  // stripe resolves to the same row on a 32-bit little-endian and a 64-bit
  // big-endian platform, and that row holds the stripe's elements.
  idx::IndexTable le(layout->gthv(), plat::linux_ia32());
  idx::IndexTable be(layout->gthv(), plat::solaris_sparc64());
  for (std::uint32_t c = 0; c < layout->num_classes(); ++c) {
    for (std::uint32_t r = 0; r < layout->num_regions(); ++r) {
      const std::uint32_t row = layout->row_of(c, r);
      EXPECT_EQ(row, le.row_of_field(layout->field_name(c, r)));
      EXPECT_EQ(row, be.row_of_field(layout->field_name(c, r)));
      const std::uint64_t slots =
          layout->slots_in(c, r) == 0 ? 1 : layout->slots_in(c, r);
      EXPECT_EQ(le.rows().at(row).element_count(),
                slots * layout->cls(c).words);
      EXPECT_EQ(layout->region_of_row(row), r);
    }
  }
  // Non-stripe rows (padding) map to "unguarded".
  std::set<std::uint32_t> stripe_rows;
  for (std::uint32_t c = 0; c < layout->num_classes(); ++c) {
    for (std::uint32_t r = 0; r < layout->num_regions(); ++r) {
      stripe_rows.insert(layout->row_of(c, r));
    }
  }
  for (std::uint32_t row = 0; row < le.rows().size(); ++row) {
    if (!stripe_rows.count(row)) {
      EXPECT_EQ(layout->region_of_row(row), dsm::kAllRegions);
    }
  }
  EXPECT_EQ(layout->region_of_row(10'000'000), dsm::kAllRegions);
}

// ---- dirty-object tracking -------------------------------------------------

TEST(ObjectSpace, TakeDirtyShipsExactlyTheDirtyObjects) {
  const auto layout = small_layout();
  dsm::GlobalSpace space(layout->gthv(), plat::linux_x86_64());
  obj::ObjectSpace objects(space, layout);
  auto sess = objects.accessor<std::int32_t>(0);

  // Find two objects in the same region with adjacent slots, plus one in a
  // different region.
  std::uint32_t region = 0;
  std::uint64_t a = 0, b = 0, other = 0;
  bool found = false;
  for (std::uint64_t i = 0; i < 64 && !found; ++i) {
    for (std::uint64_t j = 0; j < 64; ++j) {
      if (i != j && layout->region_of(0, i) == layout->region_of(0, j) &&
          layout->slot_of(0, j) == layout->slot_of(0, i) + 1) {
        region = layout->region_of(0, i);
        a = i;
        b = j;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (layout->region_of(0, i) != region) {
      other = i;
      break;
    }
  }

  sess.set(a, 11);
  sess.set(b, 22, 3);
  sess.set(other, 33);
  EXPECT_EQ(objects.dirty_objects(), 3u);

  // Draining `region` ships objects a and b — whole, coalesced into one
  // run because their slots are adjacent — and leaves `other` dirty.
  dsm::ObjectRuns runs = objects.take_dirty(region);
  EXPECT_EQ(runs.objects, 2u);
  ASSERT_EQ(runs.runs.size(), 1u);
  EXPECT_EQ(runs.runs[0].row, layout->row_of(0, region));
  EXPECT_EQ(runs.runs[0].first_elem, layout->slot_of(0, a) * 4u);
  EXPECT_EQ(runs.runs[0].count, 8u);  // two objects x four words
  EXPECT_EQ(objects.dirty_objects(), 1u);

  // kAllRegions drains the rest; a second drain ships nothing.
  runs = objects.take_dirty(dsm::kAllRegions);
  EXPECT_EQ(runs.objects, 1u);
  ASSERT_EQ(runs.runs.size(), 1u);
  EXPECT_EQ(runs.runs[0].row,
            layout->row_of(0, layout->region_of(0, other)));
  runs = objects.take_dirty(dsm::kAllRegions);
  EXPECT_EQ(runs.objects, 0u);
  EXPECT_TRUE(runs.runs.empty());

  // clear_dirty forgets marks without shipping (post-population reset).
  sess.set(a, 44);
  objects.clear_dirty();
  EXPECT_EQ(objects.dirty_objects(), 0u);
  EXPECT_EQ(sess.get(a), 44);
}

// ---- Zipfian generator -----------------------------------------------------

TEST(ZipfianGenerator, DeterministicBoundedAndSkewed) {
  work::ZipfianGenerator g1(1000, 0.99, 42);
  work::ZipfianGenerator g2(1000, 0.99, 42);
  std::vector<std::uint64_t> head_hits(4, 0);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = g1.next();
    ASSERT_EQ(a, g2.next());
    ASSERT_LT(a, 1000u);
    if (a < head_hits.size()) ++head_hits[a];
  }
  // theta = 0.99 concentrates mass on the head keys.
  EXPECT_GT(head_hits[0], 500u);
  EXPECT_GT(head_hits[0], head_hits[1]);

  // theta = 0 degenerates to uniform: the head is not hot.
  work::ZipfianGenerator uniform(1000, 0.0, 42);
  std::uint64_t zero_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (uniform.next() == 0) ++zero_hits;
  }
  EXPECT_LT(zero_hits, 50u);

  EXPECT_THROW(work::ZipfianGenerator(0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(work::ZipfianGenerator(10, 1.0, 1), std::invalid_argument);
}

// ---- KV workload: exactly-once convergence in both modes -------------------

TEST(KvWorkload, ObjectModeConvergesExactlyOnceAcrossShards) {
  work::KvConfig cfg = small_kv();
  cfg.num_shards = 2;
  cfg.object_mode = true;
  const work::KvResult res = work::run_kv(cfg);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.ops, 750u);
  // Episodes really ran at object granularity...
  EXPECT_GT(res.stats.object_episodes, 0u);
  EXPECT_GE(res.stats.objects_shipped, res.stats.object_episodes);
  // ...with no page machinery and no cross-shard pending drains: strict
  // entry consistency keeps every row's pending at its guarding region's
  // owner, so grant masks stay zero by construction.
  EXPECT_EQ(res.stats.dirty_pages, 0u);
  EXPECT_EQ(res.stats.pending_pulls, 0u);
}

TEST(KvWorkload, PageModeConvergesOnTheSameWorkload) {
  work::KvConfig cfg = small_kv();
  cfg.num_shards = 2;
  cfg.object_mode = false;
  const work::KvResult res = work::run_kv(cfg);
  EXPECT_TRUE(res.verified);
  // Page mode keeps its classic machinery: twin diffing runs and no
  // object episodes are ever counted — the off path stays untouched.
  EXPECT_GT(res.stats.dirty_pages, 0u);
  EXPECT_EQ(res.stats.object_episodes, 0u);
  EXPECT_EQ(res.stats.objects_shipped, 0u);
}

TEST(KvWorkload, SingleShardObjectModeConverges) {
  work::KvConfig cfg = small_kv();
  cfg.num_shards = 1;
  cfg.num_regions = 4;
  cfg.object_mode = true;
  const work::KvResult res = work::run_kv(cfg);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.stats.object_episodes, 0u);
}

TEST(KvWorkload, AdaptiveEngineOnDoesNotChangeResults) {
  // The tuner now sees per-episode object counts (adapt::Signal::objects);
  // decisions may change traffic shape, never results.
  work::KvConfig cfg = small_kv();
  cfg.num_shards = 2;
  cfg.object_mode = true;
  cfg.dsd.adaptive = true;
  const work::KvResult res = work::run_kv(cfg);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.stats.object_episodes, 0u);
  EXPECT_GT(res.stats.adapt_episodes, 0u);
}

TEST(KvWorkload, UniformSkewAlsoConverges) {
  work::KvConfig cfg = small_kv();
  cfg.theta = 0.0;
  cfg.num_shards = 2;
  cfg.object_mode = true;
  const work::KvResult res = work::run_kv(cfg);
  EXPECT_TRUE(res.verified);
}

// ---- ObjectCluster surface -------------------------------------------------

TEST(ObjectCluster, HeterogeneousClusterShipsScopedInitialSeeds) {
  // A remote on a big-endian 64-bit platform reads what a little-endian
  // master populated before attach — through the guarding lock, each
  // region's stripe arriving from that region's owner shard (the scoped
  // initial seed), converted by the existing data plane.
  const auto layout = small_layout(4);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  obj::ObjectCluster cluster(layout, plat::linux_ia32(),
                             {&plat::solaris_sparc64()}, opts);

  auto master = cluster.home().accessor<std::int64_t>(1);
  for (std::uint64_t i = 0; i < 16; ++i) {
    master.set(i, static_cast<std::int64_t>(i * 1000 + 1));
  }
  // Population precedes the run; the attach seed ships it, not an episode.
  cluster.home().objects().clear_dirty();

  cluster.run(
      [&](obj::ObjectHome& home) { home.wait_all_joined(); },
      [&](obj::ObjectRemote& remote) {
        auto ctr = remote.accessor<std::int64_t>(1);
        for (std::uint64_t i = 0; i < 16; ++i) {
          const std::uint32_t r = remote.layout().region_of(1, i);
          remote.lock(r);
          EXPECT_EQ(ctr.get(i), static_cast<std::int64_t>(i * 1000 + 1));
          ctr.set(i, ctr.get(i) + 1);
          remote.unlock(r);
        }
        remote.join();
      });

  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(master.get(i), static_cast<std::int64_t>(i * 1000 + 2));
  }
  EXPECT_EQ(cluster.total_stats().pending_pulls, 0u);
}
