// Robustness sweeps: every wire-facing decoder must reject arbitrary
// garbage with an exception — never crash, hang, or silently accept.
// Deterministic pseudo-random corpora stand in for a fuzzer (no libFuzzer
// in this environment); mutation tests flip bits in valid inputs.
#include <gtest/gtest.h>

#include <random>

#include "dsm/update.hpp"
#include "mig/io_state.hpp"
#include "mig/thread_state.hpp"
#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "msg/message.hpp"
#include "tags/tag.hpp"

namespace dsm = hdsm::dsm;
namespace mig = hdsm::mig;
namespace msg = hdsm::msg;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;

namespace {

std::vector<std::byte> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::byte& b : out) b = static_cast<std::byte>(rng());
  return out;
}

std::string random_ascii(std::mt19937_64& rng, std::size_t n) {
  static const char chars[] = "()0123456789,-x ";
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(chars[rng() % (sizeof(chars) - 1)]);
  }
  return s;
}

}  // namespace

TEST(Fuzz, TagParseNeverCrashes) {
  std::mt19937_64 rng(101);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::string text = random_ascii(rng, rng() % 64);
    try {
      const tags::Tag t = tags::Tag::parse(text);
      // Accepted input must round-trip.
      EXPECT_EQ(tags::Tag::parse(t.to_string()), t);
    } catch (const std::invalid_argument&) {
      // rejection is fine
    }
  }
}

TEST(Fuzz, TagFromBinaryNeverCrashes) {
  std::mt19937_64 rng(102);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::vector<std::byte> buf = random_bytes(rng, rng() % 128);
    try {
      (void)tags::Tag::from_binary(buf.data(), buf.size());
    } catch (const std::invalid_argument&) {
    } catch (const std::bad_alloc&) {
      // huge bogus counts may provoke allocation failure paths
    } catch (const std::length_error&) {
    }
  }
}

TEST(Fuzz, FrameDecoderRejectsGarbageStreams) {
  std::mt19937_64 rng(103);
  for (int iter = 0; iter < 1000; ++iter) {
    msg::FrameDecoder dec;
    const std::vector<std::byte> buf = random_bytes(rng, 16 + rng() % 256);
    dec.feed(buf.data(), buf.size());
    msg::Message out;
    try {
      while (dec.next(out)) {
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Fuzz, FrameDecoderBitflipMutations) {
  msg::Message m;
  m.type = msg::MsgType::UnlockRequest;
  m.sync_id = 2;
  m.rank = 3;
  m.tag = "(4,10)";
  m.payload.assign(40, std::byte{7});
  const std::vector<std::byte> frame = msg::encode_frame(m);
  std::mt19937_64 rng(104);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> mut = frame;
    const std::size_t pos = rng() % mut.size();
    mut[pos] ^= static_cast<std::byte>(1 << (rng() % 8));
    msg::FrameDecoder dec;
    msg::Message out;
    try {
      dec.feed(mut.data(), mut.size());
      if (dec.next(out)) {
        // A surviving frame must at least be self-consistent in length.
        EXPECT_LE(out.payload.size(), mut.size());
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Fuzz, UpdateBlockDecoderNeverCrashes) {
  std::mt19937_64 rng(105);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::vector<std::byte> buf = random_bytes(rng, rng() % 200);
    try {
      (void)dsm::decode_update_blocks(buf);
    } catch (const std::runtime_error&) {
    } catch (const std::bad_alloc&) {
    } catch (const std::length_error&) {
    }
  }
}

TEST(Fuzz, UpdateBlockBitflipMutations) {
  std::vector<dsm::UpdateBlock> blocks(2);
  blocks[0].row = 2;
  blocks[0].tag = "(4,8)";
  blocks[0].data.assign(32, std::byte{1});
  blocks[1].row = 4;
  blocks[1].tag = "(8,1)";
  blocks[1].data.assign(8, std::byte{2});
  const std::vector<std::byte> payload = dsm::encode_update_blocks(blocks);
  std::mt19937_64 rng(106);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> mut = payload;
    mut[rng() % mut.size()] ^= static_cast<std::byte>(1 << (rng() % 8));
    try {
      (void)dsm::decode_update_blocks(mut);
    } catch (const std::runtime_error&) {
    } catch (const std::bad_alloc&) {
    } catch (const std::length_error&) {
    }
  }
}

TEST(Fuzz, ThreadStateUnpackNeverCrashes) {
  mig::StateSchema schema;
  schema.register_frame(
      "f", tags::TypeDesc::struct_of("L", {{"i", tags::t_int()}}));
  std::mt19937_64 rng(107);
  const auto summary = msg::PlatformSummary::of(plat::solaris_sparc32());
  for (int iter = 0; iter < 2000; ++iter) {
    const std::vector<std::byte> buf = random_bytes(rng, rng() % 160);
    try {
      (void)mig::unpack_state(buf, schema, plat::linux_ia32(), summary);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, ThreadStateBitflipMutations) {
  mig::StateSchema schema;
  const tags::TypePtr locals =
      tags::TypeDesc::struct_of("L", {{"i", tags::t_int()},
                                      {"d", tags::t_double()}});
  schema.register_frame("f", locals);
  mig::ThreadState state;
  state.rank = 1;
  state.frames.push_back(
      mig::Frame{"f", 2, mig::StructImage(locals, plat::linux_ia32())});
  const std::vector<std::byte> packed = mig::pack_state(state);
  const auto summary = msg::PlatformSummary::of(plat::linux_ia32());
  std::mt19937_64 rng(108);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> mut = packed;
    mut[rng() % mut.size()] ^= static_cast<std::byte>(1 << (rng() % 8));
    try {
      (void)mig::unpack_state(mut, schema, plat::solaris_sparc64(), summary);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, FileAndSessionRecordsNeverCrash) {
  std::mt19937_64 rng(109);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::vector<std::byte> buf = random_bytes(rng, rng() % 64);
    try {
      (void)mig::FileStateRecord::unpack(buf.data(), buf.size());
    } catch (const std::exception&) {
    }
    try {
      (void)mig::SessionRecord::unpack(buf.data(), buf.size());
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, MalformedPayloadsDetachPeerNotHome) {
  // A peer that speaks garbage must be detached; the home node, its other
  // peers, and the master must keep working.
  namespace hdsm_dsm = hdsm::dsm;
  const tags::TypePtr gthv = tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_int(), 16)}});
  hdsm_dsm::HomeNode home(gthv, plat::linux_ia32());
  auto evil_ep = home.attach(1);
  auto good_ep = home.attach(2);
  hdsm_dsm::RemoteThread good(gthv, plat::solaris_sparc32(), 2,
                              std::move(good_ep));
  home.start();

  // The evil peer sends an unlock for a lock it does not hold, with a
  // garbage payload.
  msg::Message evil;
  evil.type = msg::MsgType::UnlockRequest;
  evil.sync_id = 0;
  evil.rank = 1;
  evil.payload.assign(13, std::byte{0xEE});
  evil_ep->send(evil);

  // The good peer still makes progress.
  good.lock(0);
  good.space().view<std::int32_t>("A").set(0, 5);
  good.unlock(0);
  good.join();
  home.wait_all_joined();  // evil rank was detached, not wedged
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(0), 5);
  home.stop();
}
