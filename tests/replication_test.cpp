// Primary/standby replication of the home directory
// (docs/REPLICATION.md): the log record codec, standby convergence under
// live traffic, clean-transport failover, split-brain fencing of a deposed
// primary, and degraded mode when the standby dies.  The fault-injected
// handover-window cases live in sharded_fault_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "dsm/replicated_home.hpp"
#include "dsm/replication.hpp"
#include "dsm/sharded_remote.hpp"
#include "replicated_harness.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
namespace test = hdsm::test;

using namespace std::chrono_literals;

// ---- record codec ----------------------------------------------------------

TEST(ReplicationCodec, EventRecordRoundTrips) {
  dsm::LogRecord r;
  r.kind = dsm::LogRecord::Kind::Event;
  r.shard = 3;
  msg::Message m;
  m.type = msg::MsgType::UnlockRequest;
  m.sync_id = 7;
  m.rank = 2;
  m.seq = 41;
  m.payload = {std::byte{0xde}, std::byte{0xad}};
  r.event = dsm::CoherenceEvent::msg_received(2, std::move(m));
  r.master_payload = {std::byte{0x01}, std::byte{0x02}, std::byte{0x03}};

  const dsm::LogRecord back = dsm::decode_record(dsm::encode_record(r));
  EXPECT_EQ(back.kind, dsm::LogRecord::Kind::Event);
  EXPECT_EQ(back.shard, 3u);
  EXPECT_EQ(back.event.kind, dsm::CoherenceEvent::Kind::MsgReceived);
  EXPECT_EQ(back.event.rank, 2u);
  EXPECT_EQ(back.event.message.type, msg::MsgType::UnlockRequest);
  EXPECT_EQ(back.event.message.sync_id, 7u);
  EXPECT_EQ(back.event.message.seq, 41u);
  EXPECT_EQ(back.event.message.payload.size(), 2u);
  EXPECT_EQ(back.master_payload, r.master_payload);
}

TEST(ReplicationCodec, MasterEventCarriesRuns) {
  dsm::LogRecord r;
  r.kind = dsm::LogRecord::Kind::Event;
  r.event = dsm::CoherenceEvent::master_unlock(5, {{2, 8, 16}});
  const dsm::LogRecord back = dsm::decode_record(dsm::encode_record(r));
  EXPECT_EQ(back.event.kind, dsm::CoherenceEvent::Kind::MasterUnlock);
  EXPECT_EQ(back.event.index, 5u);
  ASSERT_EQ(back.event.runs.size(), 1u);
  EXPECT_EQ(back.event.runs[0].row, 2u);
  EXPECT_EQ(back.event.runs[0].first_elem, 8u);
  EXPECT_EQ(back.event.runs[0].count, 16u);
}

TEST(ReplicationCodec, ControlRecordsRoundTrip) {
  for (const auto kind : {dsm::LogRecord::Kind::SetBarrierCount,
                          dsm::LogRecord::Kind::BindLock,
                          dsm::LogRecord::Kind::NoteRedirected}) {
    dsm::LogRecord r;
    r.kind = kind;
    r.shard = 1;
    r.index = 9;
    r.value = 77;
    const dsm::LogRecord back = dsm::decode_record(dsm::encode_record(r));
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.shard, 1u);
    EXPECT_EQ(back.index, 9u);
    EXPECT_EQ(back.value, 77u);
  }
}

TEST(ReplicationCodec, MalformedRecordsThrow) {
  EXPECT_THROW(dsm::decode_record({}), std::runtime_error);
  // Bad record kind.
  EXPECT_THROW(dsm::decode_record({std::byte{0x00}}), std::runtime_error);
  // Truncated mid-header.
  dsm::LogRecord r;
  r.kind = dsm::LogRecord::Kind::SetBarrierCount;
  std::vector<std::byte> wire = dsm::encode_record(r);
  wire.pop_back();
  EXPECT_THROW(dsm::decode_record(wire), std::runtime_error);
  // Trailing garbage.
  wire = dsm::encode_record(r);
  wire.push_back(std::byte{0xff});
  EXPECT_THROW(dsm::decode_record(wire), std::runtime_error);
}

// ---- standby convergence ---------------------------------------------------

TEST(Replication, StandbyConvergesWithoutFailover) {
  test::converge_replicated(nullptr, 2, 2, 10, /*failover=*/false);
}

TEST(Replication, StandbyConvergesSingleShard) {
  test::converge_replicated(nullptr, 1, 2, 10, /*failover=*/false);
}

TEST(Replication, MasterWritesReplicateThroughPackedRuns) {
  // Master mutations exist only in the primary's image until an unlock
  // names their runs; the appended record must carry the bytes themselves
  // (master_payload) for the standby's image to converge.
  dsm::ReplicatedHomeOptions opts;
  opts.home.num_shards = 2;
  dsm::ReplicatedHome repl(test::repl_gthv(), plat::linux_ia32(), opts);
  repl.start();

  repl.lock(0);
  auto a = repl.space().view<std::int64_t>("A");
  a.set(0, 1234);
  a.set(63, -5);
  repl.unlock(0);

  EXPECT_GT(repl.standby().replicated_log_index(), 0u);
  auto sa = repl.standby().space().view<std::int64_t>("A");
  EXPECT_EQ(sa.get(0), 1234);
  EXPECT_EQ(sa.get(63), -5);
  repl.stop();
}

// ---- failover --------------------------------------------------------------

TEST(Replication, FailoverMidRunLosesNothing) {
  const auto pause =
      test::converge_replicated(nullptr, 2, 2, 12, /*failover=*/true);
  EXPECT_GT(pause.count(), 0);
}

TEST(Replication, FailoverSingleShard) {
  test::converge_replicated(nullptr, 1, 2, 12, /*failover=*/true);
}

TEST(Replication, FailoverFourShardsThreeRemotes) {
  test::converge_replicated(nullptr, 4, 3, 8, /*failover=*/true);
}

TEST(Replication, PromotedStandbyReleasesDeadMastersLocks) {
  // The primary's master holds mutex 0 at the crash.  A master does not
  // survive its home: promotion must release the lock (traced as a
  // LockReleased) so the standby's remotes are not wedged forever.
  dsm::TraceLog slog;
  dsm::ReplicatedHomeOptions opts;
  opts.standby_traces = {&slog};
  dsm::ReplicatedHome repl(test::repl_gthv(), plat::linux_ia32(), opts);
  repl.start();
  repl.lock(3);  // held at the crash

  repl.fail_over();

  // The new master can take the lock the dead one held.
  repl.lock(3);
  repl.unlock(3);
  bool released = false;
  for (const auto& ev : slog.snapshot()) {
    if (ev.kind == dsm::TraceEvent::Kind::LockReleased && ev.sync_id == 3) {
      released = true;
      break;
    }
  }
  EXPECT_TRUE(released);
  const auto err = dsm::validate_trace(slog.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  repl.stop();
}

// ---- split-brain fencing ---------------------------------------------------

TEST(Replication, DeposedPrimaryFencesItself) {
  // Promote the standby while the primary still runs (a false-positive
  // failure detection — the worst case for split brain).  The primary's
  // next append is rejected with the fence epoch; it must mark itself
  // fenced and suppress externalization.
  dsm::ReplicatedHomeOptions opts;
  dsm::ReplicatedHome repl(test::repl_gthv(), plat::linux_ia32(), opts);
  repl.start();
  EXPECT_FALSE(repl.primary().fenced());

  repl.promote_standby();

  // Any event the deposed primary applies now carries the old epoch.
  repl.primary().lock(0);
  repl.primary().unlock(0);
  EXPECT_TRUE(repl.primary().fenced());
  EXPECT_TRUE(repl.sender().deposed());
  repl.stop();
}

// ---- degraded mode ---------------------------------------------------------

TEST(Replication, StandbyDeathDegradesToUnreplicated) {
  // allow_degraded (the default): when the standby stops acking, the
  // primary logs once and keeps serving unreplicated — availability over
  // durability, the home is no worse than before replication existed.
  dsm::ReplicatedHomeOptions opts;
  opts.repl.ack_timeout = test::scaled(50ms);
  opts.repl.max_retries = 1;
  dsm::ReplicatedHome repl(test::repl_gthv(), plat::linux_ia32(), opts);
  repl.start();

  repl.lock(0);
  repl.unlock(0);
  EXPECT_FALSE(repl.sender().degraded());
  const std::uint32_t replicated = repl.standby().replicated_log_index();
  EXPECT_GT(replicated, 0u);

  repl.standby().stop();  // the standby dies; its link EOFs

  repl.lock(1);
  repl.unlock(1);
  EXPECT_TRUE(repl.sender().degraded());
  EXPECT_FALSE(repl.primary().fenced());  // degraded, not deposed
  EXPECT_EQ(repl.standby().replicated_log_index(), replicated);
  repl.stop();
}

// ---- composition guards ----------------------------------------------------

TEST(Replication, MigrationRefusedUnderReplication) {
  dsm::ReplicatedHomeOptions opts;
  opts.home.num_shards = 2;
  dsm::ReplicatedHome repl(test::repl_gthv(), plat::linux_ia32(), opts);
  repl.start();
  EXPECT_THROW(repl.primary().migrate_region(0, 1), std::logic_error);
  repl.stop();
}
