// Satellite equivalence suite for the adaptive policy engine: decisions
// may change *traffic* (whole-page promotion, identity fast path, lane
// retuning, run coalescing) but must never change *results*.  Every
// workload here runs twice over identical clusters — adaptivity off, then
// on with an aggressive tuner so switches actually fire — and the final
// master-image contents must be byte-identical (memcmp, so even a
// sign-of-zero or NaN-payload difference in a double would fail).
//
// A trace test additionally checks that the adaptive event stream passes
// the validator, including invariant 5 (every strategy switch is preceded
// by a probe sample of the same episode).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "dsm/cluster.hpp"
#include "dsm/trace.hpp"
#include "tags/describe.hpp"
#include "workloads/experiment.hpp"
#include "workloads/sor.hpp"

namespace work = hdsm::work;
namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;

namespace {

/// Adaptive options tuned for tiny test workloads: one-episode warmup and
/// dwell, fast EWMA, thin switch margin — the tuner moves as early and as
/// often as it ever can, maximizing the chance a wrong decision would
/// corrupt a result.
dsm::HomeOptions adaptive_on(dsm::TraceLog* trace = nullptr) {
  dsm::HomeOptions opts;
  opts.dsd.adaptive = true;
  opts.dsd.tuner.warmup = 1;
  opts.dsd.tuner.dwell = 1;
  opts.dsd.tuner.alpha = 0.5;
  opts.dsd.tuner.margin = 0.05;
  opts.trace = trace;
  return opts;
}

template <typename T>
::testing::AssertionResult bytes_identical(const std::vector<T>& off,
                                           const std::vector<T>& on) {
  if (off.size() != on.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << off.size() << " vs " << on.size();
  }
  if (std::memcmp(off.data(), on.data(), off.size() * sizeof(T)) != 0) {
    for (std::size_t i = 0; i < off.size(); ++i) {
      if (std::memcmp(&off[i], &on[i], sizeof(T)) != 0) {
        return ::testing::AssertionFailure()
               << "first divergence at element " << i << ": " << off[i]
               << " (adaptive off) vs " << on[i] << " (adaptive on)";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace

TEST(AdaptiveEquivalence, MatmulHomogeneousPair) {
  const work::PairSpec& pair = work::paper_pairs()[0];  // LL
  const std::uint32_t n = 48;

  dsm::Cluster off(work::matmul_gthv(n), *pair.home,
                   {pair.remote, pair.remote});
  const auto c_off = work::run_matmul(off, n);
  EXPECT_EQ(off.total_stats().adapt_episodes, 0u)
      << "adaptive off must not even sample";

  dsm::Cluster on(work::matmul_gthv(n), *pair.home,
                  {pair.remote, pair.remote}, adaptive_on());
  const auto c_on = work::run_matmul(on, n);

  EXPECT_TRUE(bytes_identical(c_off, c_on));
  EXPECT_EQ(c_on, work::matmul_reference(n));
  EXPECT_GT(on.total_stats().adapt_episodes, 0u);
}

TEST(AdaptiveEquivalence, MatmulHeterogeneousPair) {
  const work::PairSpec& pair = work::paper_pairs()[2];  // SL
  const std::uint32_t n = 48;

  dsm::Cluster off(work::matmul_gthv(n), *pair.home,
                   {pair.remote, pair.remote});
  dsm::Cluster on(work::matmul_gthv(n), *pair.home,
                  {pair.remote, pair.remote}, adaptive_on());
  const auto c_off = work::run_matmul(off, n);
  const auto c_on = work::run_matmul(on, n);

  EXPECT_TRUE(bytes_identical(c_off, c_on));
  EXPECT_EQ(c_on, work::matmul_reference(n));
  EXPECT_GT(on.total_stats().adapt_episodes, 0u);
}

TEST(AdaptiveEquivalence, LuIsBitExactUnderAdaptivity) {
  // LU ships big per-barrier updates (the paper's "more data per update"
  // workload) — the case where whole-page promotion and lane retuning are
  // most likely to engage.  Doubles end to end, so memcmp is the only
  // honest comparison.
  const work::PairSpec& pair = work::paper_pairs()[2];  // SL
  const std::uint32_t n = 40;

  dsm::Cluster off(work::lu_gthv(n), *pair.home, {pair.remote, pair.remote});
  dsm::Cluster on(work::lu_gthv(n), *pair.home, {pair.remote, pair.remote},
                  adaptive_on());
  const auto m_off = work::run_lu(off, n);
  const auto m_on = work::run_lu(on, n);

  EXPECT_TRUE(bytes_identical(m_off, m_on));
  EXPECT_TRUE(bytes_identical(m_on, work::lu_reference(n)));
  EXPECT_GT(on.total_stats().adapt_episodes, 0u);
}

TEST(AdaptiveEquivalence, SorIsBitExactUnderAdaptivity) {
  // Red-black SOR: interleaved dirty runs within a row (one color per
  // phase) are exactly the pattern adaptive run coalescing bridges — the
  // over-shipped other-color bytes must be stale-but-identical, never
  // corrupting.
  const work::PairSpec& pair = work::paper_pairs()[0];  // LL
  const std::uint32_t n = 24;
  const std::uint32_t iters = 4;

  dsm::Cluster off(work::sor_gthv(n), *pair.home, {pair.remote, pair.remote});
  dsm::Cluster on(work::sor_gthv(n), *pair.home, {pair.remote, pair.remote},
                  adaptive_on());
  const auto g_off = work::run_sor(off, n, iters);
  const auto g_on = work::run_sor(on, n, iters);

  EXPECT_TRUE(bytes_identical(g_off, g_on));
  EXPECT_TRUE(bytes_identical(g_on, work::sor_reference(n, iters, 1.5)));
  EXPECT_GT(on.total_stats().adapt_episodes, 0u);
}

TEST(AdaptiveEquivalence, LockRmwWorkloadIsDeterministic) {
  // Mutex-protected read-modify-write over a shared counter array: the
  // grant/release path (pack, not pack_release — promotion must stay out
  // of it) plus the identity fast path on the homogeneous pair.  Final
  // sums are order-independent, so adaptivity must not perturb them.
  const auto gthv = tags::describe_struct("GThV_locks")
                        .pointer("GThP")
                        .array<int>("counters", 256)
                        .field<int>("n")
                        .build();
  constexpr std::uint32_t kRounds = 6;
  constexpr std::uint64_t kCounters = 256;

  const auto run = [&](dsm::HomeOptions opts) {
    dsm::Cluster cluster(gthv, *work::paper_pairs()[0].home,
                         {work::paper_pairs()[0].remote,
                          work::paper_pairs()[0].remote},
                         opts);
    const auto bump = [](auto& space, std::uint32_t thread) {
      auto v = space.template view<std::int32_t>("counters");
      // Strided RMW: 4-byte dirty elements with 8-byte clean gaps inside
      // one page — bait for the slack coalescer.
      for (std::uint64_t i = thread; i < kCounters; i += 3) {
        v.set(i, v.get(i) + static_cast<std::int32_t>(i % 7 + thread + 1));
      }
    };
    cluster.run(
        [&](dsm::HomeNode& home) {
          for (std::uint32_t r = 0; r < kRounds; ++r) {
            home.lock(1);
            bump(home.space(), 0);
            home.unlock(1);
          }
          home.barrier(0);
          home.wait_all_joined();
        },
        [&](dsm::RemoteThread& remote) {
          for (std::uint32_t r = 0; r < kRounds; ++r) {
            remote.lock(1);
            bump(remote.space(), remote.rank());
            remote.unlock(1);
          }
          remote.barrier(0);
          remote.join();
        });
    return cluster.home().space().view<std::int32_t>("counters").to_vector();
  };

  const auto off = run(dsm::HomeOptions{});
  const auto on = run(adaptive_on());
  EXPECT_TRUE(bytes_identical(off, on));

  // The result itself is predictable: each counter i gets, per round, a
  // contribution from the one thread t with i % 3 == t.
  std::vector<std::int32_t> expect(kCounters, 0);
  for (std::uint64_t i = 0; i < kCounters; ++i) {
    const auto t = static_cast<std::int32_t>(i % 3);
    expect[i] = static_cast<std::int32_t>(kRounds) *
                (static_cast<std::int32_t>(i % 7) + t + 1);
  }
  EXPECT_TRUE(bytes_identical(on, expect));
}

TEST(AdaptiveEquivalence, AdaptiveTracePassesTheValidator) {
  dsm::TraceLog log;
  const work::PairSpec& pair = work::paper_pairs()[0];
  const std::uint32_t n = 48;
  dsm::Cluster cluster(work::matmul_gthv(n), *pair.home,
                       {pair.remote, pair.remote}, adaptive_on(&log));
  EXPECT_EQ(work::run_matmul(cluster, n), work::matmul_reference(n));

  const std::vector<dsm::TraceEvent> events = log.snapshot();
  const auto error = dsm::validate_trace(events);
  EXPECT_FALSE(error.has_value()) << *error;

  std::size_t probes = 0;
  for (const dsm::TraceEvent& e : events) {
    if (e.kind == dsm::TraceEvent::Kind::ProbeSampled) ++probes;
  }
  EXPECT_GT(probes, 0u) << "adaptive run must emit probe samples";
  EXPECT_EQ(cluster.total_stats().adapt_episodes, probes)
      << "every tuner episode appears in the trace exactly once";
}
