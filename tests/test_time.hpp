// Wall-clock scaling for the timer-racing suites (fault_test,
// sharded_fault_test, replication_test).  Those suites run real retry
// timers against a tight budget (25 ms base timeout); sanitizer runtimes
// multiply every step's CPU cost, and an oversubscribed `ctest -j` can
// starve a home long enough to exhaust a remote's budget — a scheduler
// artifact, not a protocol failure.  Instead of serializing whole suites
// there, CI sets HDSM_TEST_TIME_SCALE (see tests/CMakeLists.txt) and the
// suites stretch each retry wait by that factor: same schedule shape, same
// budget, more wall clock per attempt.
#pragma once

#include <chrono>
#include <cstdlib>

namespace hdsm::test {

/// HDSM_TEST_TIME_SCALE as a multiplier; unset, unparsable, or < 1 → 1.0.
inline double time_scale() {
  static const double scale = [] {
    const char* s = std::getenv("HDSM_TEST_TIME_SCALE");
    if (s == nullptr) return 1.0;
    const double v = std::atof(s);
    return v >= 1.0 ? v : 1.0;
  }();
  return scale;
}

inline std::chrono::milliseconds scaled(std::chrono::milliseconds base) {
  return std::chrono::milliseconds(
      static_cast<long long>(static_cast<double>(base.count()) *
                             time_scale()));
}

}  // namespace hdsm::test
