// Shared driver for the primary/standby replication suites
// (docs/REPLICATION.md): N remotes increment a shared array under mutex 0
// against a ReplicatedHome, optionally behind per-session FaultyEndpoints,
// with the primary killed and the standby promoted mid-run.  The
// acceptance bar after a failover: the run converges on the *standby's*
// image to the fault-free expectation, the standby's protocol trace
// validates seamlessly across the epoch bump (the replayed prefix and the
// post-promotion suffix form one coherent log), and no (rank, request) is
// applied twice — zero lost and zero doubled grants or updates.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "dsm/replicated_home.hpp"
#include "dsm/sharded_remote.hpp"
#include "dsm/trace.hpp"
#include "msg/faulty.hpp"
#include "test_time.hpp"

namespace hdsm::test {

constexpr std::uint64_t kReplElems = 64;

inline tags::TypePtr repl_gthv() {
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), kReplElems)}});
}

inline dsm::RetryPolicy repl_fast_retry() {
  dsm::RetryPolicy p;
  p.timeout = scaled(std::chrono::milliseconds(25));
  p.backoff = 1.5;
  p.max_timeout = scaled(std::chrono::milliseconds(200));
  p.max_retries = 12;
  return p;
}

inline std::vector<std::pair<std::uint64_t, std::int64_t>> repl_ops_of(
    std::uint32_t rank, int ops) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> v;
  std::mt19937_64 rng(900 + rank);
  for (int i = 0; i < ops; ++i) {
    v.emplace_back(rng() % kReplElems,
                   static_cast<std::int64_t>(rng() % 100) - 50);
  }
  return v;
}

inline std::vector<std::int64_t> repl_expected(std::uint32_t num_remotes,
                                               int ops) {
  std::vector<std::int64_t> e(kReplElems, 0);
  for (std::uint32_t r = 1; r <= num_remotes; ++r) {
    for (const auto& [idx, delta] : repl_ops_of(r, ops)) e[idx] += delta;
  }
  return e;
}

/// Validate one home's shard logs and assert the cross-shard exactly-once
/// bar (a (rank, req) applied at two shards, or twice at one, is a doubled
/// update).
inline void check_logs(std::vector<dsm::TraceLog>& logs, const char* who) {
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> applied;
  for (std::uint32_t s = 0; s < logs.size(); ++s) {
    const auto snap = logs[s].snapshot();
    const auto err = dsm::validate_trace(snap);
    EXPECT_FALSE(err.has_value()) << who << " shard " << s << ": " << *err;
    for (const auto& ev : snap) {
      if (ev.kind != dsm::TraceEvent::Kind::UpdatesApplied || ev.req == 0) {
        continue;
      }
      const auto [it, fresh] =
          applied.emplace(std::make_pair(ev.rank, ev.req), s);
      EXPECT_TRUE(fresh) << who << ": rank " << ev.rank << " request #"
                         << ev.req << " applied at shard " << it->second
                         << " and again at shard " << s;
    }
  }
}

/// The driver.  `fault == nullptr` runs clean transports.  With
/// `failover`, the primary is killed once roughly half the total ops have
/// committed and the standby promoted; remotes re-dial through
/// ReplicatedHome::redial (their reconnect hook).  Returns the failover
/// pause (zero when `failover` is false).
inline std::chrono::nanoseconds converge_replicated(
    const msg::FaultOptions* fault, std::uint32_t num_shards,
    std::uint32_t num_remotes, int ops, bool failover) {
  std::vector<dsm::TraceLog> plogs(num_shards);
  std::vector<dsm::TraceLog> slogs(num_shards);
  dsm::ReplicatedHomeOptions opts;
  opts.home.num_shards = num_shards;
  for (auto& l : plogs) opts.home.shard_traces.push_back(&l);
  for (auto& l : slogs) opts.standby_traces.push_back(&l);
  dsm::ReplicatedHome repl(repl_gthv(), hdsm::plat::linux_ia32(), opts);

  // Re-dialed transports inherit the session's fault schedule minus the
  // reset: each reset burns a finite reconnect credit, and an endless
  // reset→redial loop would test the budget, not the failover.
  const auto wrap = [fault](std::uint32_t rank, std::uint32_t shard,
                            bool redial, msg::EndpointPtr ep) {
    if (fault == nullptr) return ep;
    msg::FaultOptions per = *fault;
    per.seed = fault->seed + rank * 64 + shard + (redial ? 4096 : 0);
    if (redial) {
      per.send.reset_after = 0;
      per.recv.reset_after = 0;
    }
    return msg::EndpointPtr(msg::make_faulty(std::move(ep), per));
  };

  repl.set_barrier_count(0, num_remotes + 1);
  repl.start();

  std::atomic<int> ops_done{0};
  std::vector<std::thread> threads;
  threads.reserve(num_remotes);
  for (std::uint32_t rank = 1; rank <= num_remotes; ++rank) {
    std::vector<msg::EndpointPtr> eps = repl.attach(rank);
    for (std::uint32_t s = 0; s < eps.size(); ++s) {
      eps[s] = wrap(rank, s, /*redial=*/false, std::move(eps[s]));
    }
    threads.emplace_back([&repl, &wrap, &ops_done, rank, ops,
                          eps = std::move(eps)]() mutable {
      dsm::ShardedRemoteOptions ropts;
      ropts.retry = repl_fast_retry();
      ropts.max_reconnects = 6;
      ropts.reconnect = [&repl, &wrap, rank](std::uint32_t shard) {
        return wrap(rank, shard, /*redial=*/true, repl.redial(rank, shard));
      };
      dsm::ShardedRemote remote(repl_gthv(), hdsm::plat::linux_ia32(), rank,
                                std::move(eps), ropts);
      for (const auto& [idx, delta] : repl_ops_of(rank, ops)) {
        remote.lock(0);
        auto a = remote.space().view<std::int64_t>("A");
        a.set(idx, a.get(idx) + delta);
        remote.unlock(0);
        ops_done.fetch_add(1);
      }
      remote.barrier(0);
      remote.join();
    });
  }

  std::chrono::nanoseconds pause{0};
  if (failover) {
    const int threshold =
        std::max(1, static_cast<int>(num_remotes) * ops / 2);
    while (ops_done.load() < threshold) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    pause = repl.fail_over();
    EXPECT_TRUE(repl.failed_over());
  }
  repl.barrier(0);
  repl.wait_all_joined();
  for (std::thread& t : threads) t.join();

  const std::vector<std::int64_t> expected = repl_expected(num_remotes, ops);
  auto a = repl.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kReplElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  EXPECT_GT(repl.standby().replicated_log_index(), 0u);
  if (failover) {
    // The primary's log stops mid-run (open episodes at the crash point);
    // the standby's must validate end to end — the replayed prefix plus
    // the post-promotion suffix form one seamless history.
    check_logs(slogs, "standby");
  } else {
    check_logs(plogs, "primary");
    check_logs(slogs, "standby");
    // Without a failover the standby replayed everything the primary
    // executed: its image is byte-for-byte the converged state too.
    auto sa = repl.standby().space().view<std::int64_t>("A");
    for (std::uint64_t i = 0; i < kReplElems; ++i) {
      EXPECT_EQ(sa.get(i), expected[i]) << "standby element " << i;
    }
  }
  repl.stop();
  return pause;
}

}  // namespace hdsm::test
