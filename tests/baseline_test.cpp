// Tests for the homogeneous page-based DSM baseline: raw twin/diff update
// collection, the whole-page-send threshold, and two-node propagation.
#include <gtest/gtest.h>

#include <cstring>

#include "baseline/page_dsm.hpp"

namespace base = hdsm::base;
namespace mem = hdsm::mem;

TEST(PageDsm, CollectsRawByteUpdates) {
  base::PageDsmNode node(4096);
  node.start_tracking();
  node.data()[100] = std::byte{1};
  node.data()[101] = std::byte{2};
  node.data()[500] = std::byte{3};
  const auto updates = node.collect_updates();
  node.stop_tracking();
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0].offset, 100u);
  EXPECT_EQ(updates[0].data.size(), 2u);
  EXPECT_EQ(updates[1].offset, 500u);
  EXPECT_FALSE(updates[0].whole_page);
}

TEST(PageDsm, WholePageThresholdTriggers) {
  const std::size_t ps = mem::Region::host_page_size();
  base::PageDsmOptions opts;
  opts.whole_page_threshold = 0.5;
  base::PageDsmNode node(2 * ps, opts);
  node.start_tracking();
  // Dirty > half of page 0.
  for (std::size_t i = 0; i < ps / 2 + 16; ++i) {
    node.data()[i] = std::byte{7};
  }
  const auto updates = node.collect_updates();
  node.stop_tracking();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].whole_page);
  EXPECT_EQ(updates[0].data.size(), ps);
  EXPECT_EQ(node.stats().whole_pages, 1u);
}

TEST(PageDsm, ThresholdDisabled) {
  const std::size_t ps = mem::Region::host_page_size();
  base::PageDsmOptions opts;
  opts.whole_page_optimization = false;
  base::PageDsmNode node(ps, opts);
  node.start_tracking();
  for (std::size_t i = 0; i < ps; i += 2) node.data()[i] = std::byte{1};
  const auto updates = node.collect_updates();
  node.stop_tracking();
  // Every other byte differs: one range per byte, no whole page.
  EXPECT_EQ(updates.size(), ps / 2);
  EXPECT_EQ(node.stats().whole_pages, 0u);
}

TEST(PageDsm, TwoNodePropagation) {
  base::PageDsmNode a(8192), b(8192);
  a.start_tracking();
  const char msg[] = "hello page dsm";
  std::memcpy(a.data() + 1000, msg, sizeof(msg));
  const auto updates = a.collect_updates();
  a.stop_tracking();
  b.apply_updates(updates);
  EXPECT_EQ(std::memcmp(b.data() + 1000, msg, sizeof(msg)), 0);
  EXPECT_GT(a.stats().bytes_sent, 0u);
  EXPECT_GT(b.stats().apply_ns, 0u);
}

TEST(PageDsm, FalseSharingShipsUntouchedNeighborBytes) {
  // Two "objects" on one page, each written by a different writer.  The
  // page-granularity baseline with the threshold on ships the whole page —
  // the false-sharing cost the paper's object-level updates avoid.
  const std::size_t ps = mem::Region::host_page_size();
  base::PageDsmNode node(ps);
  node.start_tracking();
  for (std::size_t i = 0; i < ps; ++i) {
    node.data()[i] = std::byte{0x10};  // whole page modified
  }
  const auto updates = node.collect_updates();
  node.stop_tracking();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].whole_page);
}

TEST(PageDsm, ApplyBoundsChecked) {
  base::PageDsmNode node(128);
  base::PageUpdate u;
  u.offset = 4096;
  u.data.assign(4, std::byte{0});
  EXPECT_THROW(node.apply_updates({u}), std::out_of_range);
}

TEST(PageDsm, RepeatedIntervals) {
  base::PageDsmNode node(4096);
  node.start_tracking();
  for (int round = 0; round < 4; ++round) {
    node.data()[round * 8] = std::byte{static_cast<unsigned char>(round + 1)};
    const auto updates = node.collect_updates();
    ASSERT_EQ(updates.size(), 1u) << round;
    EXPECT_EQ(updates[0].offset, static_cast<std::size_t>(round * 8));
  }
  node.stop_tracking();
  EXPECT_EQ(node.stats().dirty_pages, 4u);
}
