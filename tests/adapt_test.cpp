// Deterministic pure-core tests for the adaptive policy engine: EWMA/probe
// math, warmup, pins, hysteresis (no flapping on an oscillating signal),
// the lanes/slack/threshold decision rules, and seeded replay (the same
// signal trace always reproduces the same decision trace).  No I/O, no
// threads, no clocks — everything here is a function of the inputs.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/probe.hpp"
#include "adapt/signal.hpp"
#include "adapt/tuner.hpp"
#include "baseline/page_dsm.hpp"

namespace adapt = hdsm::adapt;

namespace {

/// Aggressive config so tests don't need long warmup/dwell stretches.
adapt::TunerConfig fast_cfg() {
  adapt::TunerConfig cfg;
  cfg.warmup = 1;
  cfg.dwell = 1;
  return cfg;
}

/// Apply-side episode with an identity (or not) sender.
adapt::Signal apply_signal(bool identity, std::uint64_t bytes = 512) {
  adapt::Signal s;
  s.blocks = 4;
  s.bytes_applied = bytes;
  s.unpack_ns = 1000;
  s.conv_ns = 2000;
  s.identity_sender = identity;
  s.lanes_used = 1;
  return s;
}

}  // namespace

TEST(Ewma, SeedsOnFirstSampleThenSmooths) {
  adapt::Ewma e(0.25);
  EXPECT_FALSE(e.seeded());
  e.update(100.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
  e.update(200.0);
  EXPECT_DOUBLE_EQ(e.value(), 125.0);  // 100 + 0.25 * (200 - 100)
  EXPECT_EQ(e.samples(), 2u);
}

TEST(Probe, FieldGroupsFoldIndependently) {
  adapt::Probe p(0.5);

  // Pack-only episode: diff and apply models untouched.
  adapt::Signal pack;
  pack.pack_ns = 1000;
  pack.runs = 10;
  pack.bytes_packed = 1000;
  p.observe(pack);
  EXPECT_GT(p.per_run_ns(), 0.0);
  EXPECT_GT(p.pack_ns_per_byte(), 0.0);
  EXPECT_DOUBLE_EQ(p.diff_ns_per_byte(), 0.0);
  EXPECT_FALSE(p.has_seq_model());

  // Apply-only episode: seq conversion model seeds, pack models unchanged.
  adapt::Signal apply;
  apply.blocks = 2;
  apply.bytes_applied = 100;
  apply.conv_ns = 500;
  apply.plan_hits = 3;
  apply.plan_misses = 1;
  p.observe(apply);
  EXPECT_TRUE(p.has_seq_model());
  EXPECT_DOUBLE_EQ(p.seq_ns_per_byte(), 5.0);
  EXPECT_DOUBLE_EQ(p.plan_hit_rate(), 0.75);
  EXPECT_EQ(p.episodes(), 2u);

  // Collect-only episode: diff cost + density.
  adapt::Signal coll;
  coll.dirty_pages = 2;
  coll.diff_ns = 8192;
  coll.diffed_bytes = 4096;
  coll.page_size = 4096;
  p.observe(coll);
  EXPECT_DOUBLE_EQ(p.diff_ns_per_byte(), 1.0);
  EXPECT_DOUBLE_EQ(p.density(), 0.5);
}

TEST(Probe, ObjectEpisodesFoldWithoutPageDrag) {
  adapt::Probe p(0.5);
  EXPECT_FALSE(p.has_object_model());

  // A page-granularity episode (objects == 0) must not seed the object
  // model...
  adapt::Signal page;
  page.dirty_pages = 2;
  page.diff_ns = 100;
  page.diffed_bytes = 100;
  page.page_size = 4096;
  p.observe(page);
  EXPECT_FALSE(p.has_object_model());

  // ...an object-mode episode seeds it...
  adapt::Signal objs;
  objs.objects = 8;
  p.observe(objs);
  EXPECT_TRUE(p.has_object_model());
  EXPECT_DOUBLE_EQ(p.objects_per_episode(), 8.0);

  // ...later object episodes smooth it (alpha 0.5)...
  objs.objects = 16;
  p.observe(objs);
  EXPECT_DOUBLE_EQ(p.objects_per_episode(), 12.0);

  // ...and interleaved page episodes leave it untouched instead of
  // dragging the mean toward zero.
  p.observe(page);
  EXPECT_DOUBLE_EQ(p.objects_per_episode(), 12.0);
}

TEST(Tuner, WarmupFreezesAllDecisions) {
  adapt::TunerConfig cfg;
  cfg.warmup = 5;
  cfg.dwell = 1;
  adapt::Tuner t(cfg);
  for (int i = 0; i < 4; ++i) {
    const adapt::Decision& d = t.step(apply_signal(/*identity=*/true));
    EXPECT_EQ(d.changed, 0u) << "episode " << i;
    EXPECT_FALSE(d.identity_fastpath);
  }
  // Episode 5 reaches warmup; identity rate is pegged at 1.0 by now.
  const adapt::Decision& d = t.step(apply_signal(true));
  EXPECT_TRUE(d.identity_fastpath);
  EXPECT_TRUE(d.changed & adapt::Decision::kFastpath);
}

TEST(Tuner, PinnedKnobsNeverMove) {
  adapt::TunerConfig cfg = fast_cfg();
  cfg.pin_identity_fastpath = 0;
  cfg.pin_conv_threads = 2;
  cfg.pin_merge_slack = 0;
  adapt::Tuner t(cfg);
  EXPECT_EQ(t.decision().conv_threads, 2u);
  for (int i = 0; i < 50; ++i) {
    const adapt::Decision& d = t.step(apply_signal(true, 200000));
    EXPECT_FALSE(d.identity_fastpath);
    EXPECT_EQ(d.conv_threads, 2u);
    EXPECT_EQ(d.merge_slack, 0u);
    EXPECT_EQ(d.changed & adapt::Decision::kFastpath, 0u);
    EXPECT_EQ(d.changed & adapt::Decision::kLanes, 0u);
  }
}

TEST(Tuner, CodecKnobGatedByEnableFlag) {
  // Sessions that never opt in (codec != Adaptive) must see the exact
  // pre-codec five-knob decision trace: no exploration, no kCodec bit.
  adapt::Tuner t(fast_cfg());
  adapt::Signal s;
  s.pack_ns = 1000;
  s.runs = 4;
  s.bytes_packed = 100000;
  s.bytes_raw = 100000;
  for (int i = 0; i < 50; ++i) {
    const adapt::Decision& d = t.step(s);
    EXPECT_FALSE(d.compress);
    EXPECT_EQ(d.changed & adapt::Decision::kCodec, 0u);
  }
}

TEST(Tuner, CodecExploresOnceThenFollowsTheCostModel) {
  adapt::TunerConfig cfg = fast_cfg();
  cfg.enable_codec = true;
  adapt::Tuner t(cfg);

  // Raw pack episodes: the encode cost and ratio can only be measured by
  // running the encoder, so the tuner flips the knob on once to explore.
  adapt::Signal raw;
  raw.pack_ns = 1000;
  raw.runs = 4;
  raw.bytes_packed = 100000;
  raw.bytes_raw = 100000;
  bool explored = false;
  for (int i = 0; i < 10 && !explored; ++i) explored = t.step(raw).compress;
  EXPECT_TRUE(explored);

  // Codec episodes over a slow measured link (100 ns/B) with cheap encode
  // (1 ns/B) and 4x compression: the codec wins, the knob stays engaged.
  adapt::Signal coded = raw;
  coded.codec_on = true;
  coded.encode_ns = 100000;
  coded.bytes_coded = 25000;
  coded.wire_ns = 2500000;
  coded.wire_bytes = 25000;
  for (int i = 0; i < 20; ++i) t.step(coded);
  EXPECT_TRUE(t.decision().compress);

  // The link speeds up to 0.1 ns/B: shipping raw beats paying the encoder,
  // so the knob releases once the EWMA catches up.
  adapt::Signal fast = coded;
  fast.wire_ns = 2500;
  for (int i = 0; i < 200; ++i) t.step(fast);
  EXPECT_FALSE(t.decision().compress);
}

TEST(Tuner, CodecPinNeverMoves) {
  adapt::TunerConfig cfg = fast_cfg();
  cfg.enable_codec = true;
  cfg.pin_codec = 0;
  adapt::Tuner off(cfg);
  // Even a link slow enough to make compression a runaway win can't move a
  // pinned knob.
  adapt::Signal coded;
  coded.pack_ns = 1000;
  coded.runs = 4;
  coded.bytes_packed = 100000;
  coded.bytes_raw = 100000;
  coded.codec_on = true;
  coded.encode_ns = 100000;
  coded.bytes_coded = 25000;
  coded.wire_ns = 10000000;
  coded.wire_bytes = 25000;
  for (int i = 0; i < 50; ++i) {
    const adapt::Decision& d = off.step(coded);
    EXPECT_FALSE(d.compress);
    EXPECT_EQ(d.changed & adapt::Decision::kCodec, 0u);
  }

  cfg.pin_codec = 1;
  adapt::Tuner on(cfg);
  EXPECT_TRUE(on.decision().compress);
}

TEST(Tuner, NoFlappingOnOscillatingSignal) {
  // Identity traffic alternating every episode: the EWMA hovers around
  // 0.5, so without hysteresis the fast path would toggle constantly.
  // With the engage>=0.5 / release<0.25 band it changes at most once.
  adapt::Tuner t(adapt::TunerConfig{});  // default warmup/dwell
  std::uint64_t fastpath_changes = 0;
  for (int i = 0; i < 200; ++i) {
    const adapt::Decision& d = t.step(apply_signal(i % 2 == 0));
    if (d.changed & adapt::Decision::kFastpath) ++fastpath_changes;
  }
  EXPECT_LE(fastpath_changes, 1u);
}

TEST(Tuner, SeededReplayReproducesDecisionTrace) {
  // A deterministic LCG drives 300 episodes of mixed collect/pack/apply
  // signals; feeding the identical trace through a fresh tuner must yield
  // the identical decision trace (values and changed bits).
  const auto make_trace = [] {
    std::vector<adapt::Signal> trace;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    const auto next = [&x] {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      return (x >> 33);
    };
    for (int i = 0; i < 300; ++i) {
      adapt::Signal s;
      switch (next() % 3) {
        case 0:  // collect
          s.dirty_pages = 1 + next() % 8;
          s.diff_ns = 1000 + next() % 100000;
          s.diffed_bytes = next() % (s.dirty_pages * 4096);
          s.runs = 1 + next() % 64;
          break;
        case 1:  // pack
          s.pack_ns = 1000 + next() % 50000;
          s.runs = 1 + next() % 64;
          s.bytes_packed = 100 + next() % 100000;
          break;
        default:  // apply
          s.blocks = 1 + next() % 32;
          s.bytes_applied = 100 + next() % 200000;
          s.unpack_ns = 100 + next() % 10000;
          s.conv_ns = 100 + next() % 400000;
          s.identity_sender = next() % 2 == 0;
          s.parallel = next() % 4 == 0;
          s.lanes_used = s.parallel ? 4 : 1;
          s.plan_hits = next() % 32;
          s.plan_misses = next() % 8;
          break;
      }
      trace.push_back(s);
    }
    return trace;
  };

  const std::vector<adapt::Signal> trace = make_trace();
  adapt::TunerConfig cfg = fast_cfg();
  adapt::Tuner a(cfg), b(cfg);
  for (const adapt::Signal& s : trace) {
    const adapt::Decision da = a.step(s);
    const adapt::Decision db = b.step(s);
    ASSERT_TRUE(da == db);
    ASSERT_EQ(da.changed, db.changed);
  }
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(Tuner, LanesFollowTheMeasuredCostModels) {
  adapt::TunerConfig cfg = fast_cfg();
  cfg.max_lanes = 4;
  cfg.min_grain = 4096;
  adapt::Tuner t(cfg);

  // Sequential conversion measured expensive on big batches: the tuner's
  // bounded exploration kicks in and raises the lane count.
  adapt::Signal seq = apply_signal(false, /*bytes=*/100000);
  seq.conv_ns = 1000000;  // 10 ns/B sequential
  t.step(seq);
  t.step(seq);
  EXPECT_EQ(t.decision().conv_threads, 4u) << "exploration should fire";

  // Parallel path measures much cheaper: lanes stay up.
  adapt::Signal par = apply_signal(false, 100000);
  par.conv_ns = 300000;  // 3 ns/B parallel
  par.parallel = true;
  par.lanes_used = 4;
  for (int i = 0; i < 5; ++i) t.step(par);
  EXPECT_EQ(t.decision().conv_threads, 4u);

  // Parallel path turns expensive (e.g. contended machine): fall back.
  adapt::Signal slow_par = par;
  slow_par.conv_ns = 4000000;  // 40 ns/B parallel
  for (int i = 0; i < 10; ++i) t.step(slow_par);
  EXPECT_EQ(t.decision().conv_threads, 1u);
}

TEST(Tuner, SlackIsCappedByTheSafetyBound) {
  // Huge per-run overhead relative to byte cost: unbounded coalescing
  // would want ~99 bytes of slack, but the ownership-granularity cap
  // holds it at max_merge_slack.
  adapt::TunerConfig cfg = fast_cfg();
  adapt::Tuner t(cfg);
  adapt::Signal s;
  s.pack_ns = 100000;  // per_run = 5000 ns at 10 runs
  s.runs = 10;
  s.bytes_packed = 1000;  // pack cost = 50 ns/B
  for (int i = 0; i < 10; ++i) t.step(s);
  EXPECT_EQ(t.decision().merge_slack, cfg.max_merge_slack);

  adapt::TunerConfig tight = fast_cfg();
  tight.max_merge_slack = 8;
  adapt::Tuner t2(tight);
  for (int i = 0; i < 10; ++i) t2.step(s);
  EXPECT_EQ(t2.decision().merge_slack, 8u);
}

TEST(Tuner, ChangedBitsClearOnStationaryEpisodes) {
  adapt::Tuner t(fast_cfg());
  adapt::Signal s = apply_signal(true);
  t.step(s);
  t.step(s);  // fastpath engages here or earlier
  // Once converged, further identical episodes change nothing.
  for (int i = 0; i < 10; ++i) {
    const adapt::Decision& d = t.step(s);
    if (i > 2) {
      EXPECT_EQ(d.changed, 0u);
    }
  }
}

// Satellite: the re-derived PageDsmOptions::whole_page_threshold default
// came out of the bench_abl_diff_threshold sweep; on a stationary workload
// with the cost profile that sweep measured (tens of runs per dirty page,
// ~50 ns per-run overhead, sub-ns/byte stream cost), the online tuner must
// land within one 0.1 bucket of that derived default.
TEST(Tuner, ConvergesToTheDerivedStaticThreshold) {
  adapt::TunerConfig cfg;
  cfg.warmup = 2;
  cfg.dwell = 2;
  cfg.page_size = 4096;
  cfg.wire_ns_per_byte = 0.5;
  adapt::Tuner t(cfg);

  // Stationary episode modeled on the sweep's moderate-density point:
  // 53 runs/page, ~50.4 ns per run, ~0.3 ns/B pack cost
  //   -> t* = 1 - 52 * 50.4 / (4096 * 0.8) ~= 0.20.
  adapt::Signal s;
  s.dirty_pages = 2;
  s.diff_ns = 2000;
  s.diffed_bytes = 1638;  // 20% density
  s.runs = 106;
  s.pack_ns = 10685;
  s.bytes_packed = 17808;
  s.page_size = 4096;
  for (int i = 0; i < 40; ++i) t.step(s);

  const double derived = hdsm::base::PageDsmOptions{}.whole_page_threshold;
  EXPECT_NEAR(t.decision().whole_page_threshold, derived, 0.1 + 1e-9)
      << "tuner must converge to within one bucket of the static default";
}
