// Tests for the MigThread runtime: tagged struct images, tag-driven
// conversion, thread-state pack/unpack across heterogeneous platforms, the
// resumable-computation harness, and the §3.1 role state machine.
#include <gtest/gtest.h>

#include <thread>

#include <unistd.h>

#include "mig/checkpoint.hpp"
#include "mig/io_state.hpp"
#include "mig/portable_heap.hpp"
#include "mig/roles.hpp"
#include "mig/runner.hpp"
#include "mig/struct_image.hpp"
#include "mig/tagged_convert.hpp"
#include "mig/thread_state.hpp"
#include "msg/endpoint.hpp"
#include "msg/tcp.hpp"

namespace mig = hdsm::mig;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
using tags::TypeDesc;

namespace {

tags::TypePtr locals_type() {
  return TypeDesc::struct_of("locals",
                             {{"i", tags::t_int()},
                              {"acc", tags::t_double()},
                              {"buf", TypeDesc::array(tags::t_int(), 16)},
                              {"flag", tags::t_char()}});
}

}  // namespace

// ---- StructImage -----------------------------------------------------------

TEST(StructImage, FieldAccessNativeAndForeign) {
  for (const plat::PlatformDesc* p :
       {&plat::linux_ia32(), &plat::solaris_sparc32()}) {
    mig::StructImage img(locals_type(), *p);
    img.set<std::int32_t>("i", -5);
    img.set<double>("acc", 0.75);
    img.set<std::int32_t>("buf", 99, 7);
    img.set<std::int8_t>("flag", 1);
    EXPECT_EQ(img.get<std::int32_t>("i"), -5) << p->name;
    EXPECT_EQ(img.get<double>("acc"), 0.75) << p->name;
    EXPECT_EQ(img.get<std::int32_t>("buf", 7), 99) << p->name;
    EXPECT_EQ(img.get<std::int8_t>("flag"), 1) << p->name;
  }
}

TEST(StructImage, BadAccessesThrow) {
  mig::StructImage img(locals_type(), plat::linux_ia32());
  EXPECT_THROW(img.get<std::int32_t>("nope"), std::out_of_range);
  EXPECT_THROW(img.get<std::int32_t>("buf", 16), std::out_of_range);
}

TEST(StructImage, TagTextFollowsPlatform) {
  mig::StructImage a(locals_type(), plat::linux_ia32());
  mig::StructImage b(locals_type(), plat::solaris_sparc32());
  EXPECT_EQ(a.tag_text(), "(4,1)(0,0)(8,1)(0,0)(4,16)(0,0)(1,1)(3,0)");
  // SPARC: double aligned to 8 -> padding after the int.
  EXPECT_EQ(b.tag_text(), "(4,1)(4,0)(8,1)(0,0)(4,16)(0,0)(1,1)(7,0)");
}

TEST(StructImage, ConvertToPreservesValues) {
  mig::StructImage src(locals_type(), plat::linux_ia32());
  src.set<std::int32_t>("i", 1234567);
  src.set<double>("acc", -2.25);
  for (int k = 0; k < 16; ++k) src.set<std::int32_t>("buf", k * k, k);
  const mig::StructImage dst = src.convert_to(plat::solaris_sparc64());
  EXPECT_EQ(dst.get<std::int32_t>("i"), 1234567);
  EXPECT_EQ(dst.get<double>("acc"), -2.25);
  for (int k = 0; k < 16; ++k) EXPECT_EQ(dst.get<std::int32_t>("buf", k), k * k);
}

// ---- tag-driven conversion ---------------------------------------------------

TEST(TaggedConvert, RunsFromTagExpandAggregates) {
  const tags::Tag tag = tags::Tag::parse("(4,2)(2,0)((8,1)(0,0),3)(4,-1)");
  const auto runs = mig::runs_from_tag(tag);
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs[0].elem_size, 4u);
  EXPECT_EQ(runs[0].count, 2u);
  EXPECT_TRUE(runs[1].is_padding);
  EXPECT_EQ(runs[2].offset, 10u);
  EXPECT_EQ(runs[3].offset, 18u);
  EXPECT_EQ(runs[4].offset, 26u);
  EXPECT_TRUE(runs[5].is_pointer);
  EXPECT_EQ(runs[5].offset, 34u);
}

TEST(TaggedConvert, ConvertsUsingOnlyWireKnowledge) {
  // Sender: SPARC32 image + its tag; receiver: IA-32 TypeDesc knowledge.
  const tags::TypePtr t = locals_type();
  mig::StructImage src(t, plat::solaris_sparc32());
  src.set<std::int32_t>("i", -777);
  src.set<double>("acc", 123.5);
  src.set<std::int32_t>("buf", 31, 15);

  const tags::Tag wire_tag = tags::Tag::parse(src.tag_text());
  mig::StructImage dst(t, plat::linux_ia32());
  mig::convert_tagged_image(src.bytes().data(), wire_tag, plat::Endian::Big,
                            plat::LongDoubleFormat::Binary128,
                            dst.bytes().data(), dst.layout());
  EXPECT_EQ(dst.get<std::int32_t>("i"), -777);
  EXPECT_EQ(dst.get<double>("acc"), 123.5);
  EXPECT_EQ(dst.get<std::int32_t>("buf", 15), 31);
}

TEST(TaggedConvert, ShapeMismatchRejected) {
  const tags::TypePtr t = locals_type();
  mig::StructImage dst(t, plat::linux_ia32());
  const tags::Tag bad = tags::Tag::parse("(4,3)");
  std::vector<std::byte> src(12);
  EXPECT_THROW(mig::convert_tagged_image(src.data(), bad, plat::Endian::Big,
                                         plat::LongDoubleFormat::Binary128,
                                         dst.bytes().data(), dst.layout()),
               std::invalid_argument);
}

// ---- thread state -------------------------------------------------------------

TEST(ThreadState, PackUnpackAcrossPlatforms) {
  mig::StateSchema schema;
  schema.register_frame("worker", locals_type());
  schema.register_heap_type("block",
                            TypeDesc::array(tags::t_double(), 4));

  mig::ThreadState state;
  state.rank = 2;
  mig::StructImage locals(locals_type(), plat::linux_ia32());
  locals.set<std::int32_t>("i", 17);
  locals.set<double>("acc", 8.5);
  state.frames.push_back(mig::Frame{"worker", 3, std::move(locals)});

  mig::StructImage heap(TypeDesc::array(tags::t_double(), 4),
                        plat::linux_ia32());
  heap.set<double>("", 1.5, 2);
  state.heap.push_back(mig::HeapObject{42, "block", std::move(heap)});

  const std::vector<std::byte> packed = mig::pack_state(state);
  const mig::ThreadState back = mig::unpack_state(
      packed, schema, plat::solaris_sparc64(),
      msg::PlatformSummary::of(plat::linux_ia32()));

  EXPECT_EQ(back.rank, 2u);
  ASSERT_EQ(back.frames.size(), 1u);
  EXPECT_EQ(back.frames[0].function, "worker");
  EXPECT_EQ(back.frames[0].label, 3u);
  EXPECT_EQ(back.frames[0].locals.get<std::int32_t>("i"), 17);
  EXPECT_EQ(back.frames[0].locals.get<double>("acc"), 8.5);
  ASSERT_EQ(back.heap.size(), 1u);
  EXPECT_EQ(back.heap[0].id, 42u);
  EXPECT_EQ(back.heap[0].image.get<double>("", 2), 1.5);
  EXPECT_EQ(back.heap[0].image.platform().name, "solaris-sparc64");
}

TEST(ThreadState, UnknownFunctionRejected) {
  mig::StateSchema schema;
  mig::ThreadState state;
  state.frames.push_back(
      mig::Frame{"mystery", 0,
                 mig::StructImage(locals_type(), plat::linux_ia32())});
  const auto packed = mig::pack_state(state);
  EXPECT_THROW(mig::unpack_state(packed, schema, plat::linux_ia32(),
                                 msg::PlatformSummary::of(plat::linux_ia32())),
               std::out_of_range);
}

TEST(ThreadState, SendReceiveOverEndpoint) {
  mig::StateSchema schema;
  schema.register_frame("worker", locals_type());
  auto [src_ep, dst_ep] = msg::make_channel_pair();

  mig::ThreadState state;
  state.rank = 1;
  mig::StructImage locals(locals_type(), plat::solaris_sparc32());
  locals.set<std::int32_t>("i", 5);
  state.frames.push_back(mig::Frame{"worker", 1, std::move(locals)});

  std::thread sender([&] {
    mig::send_state(*src_ep, state, plat::solaris_sparc32());
  });
  const mig::ThreadState got =
      mig::receive_state(*dst_ep, schema, plat::linux_x86_64());
  sender.join();
  EXPECT_EQ(got.frames[0].locals.get<std::int32_t>("i"), 5);
}

// ---- resumable runner: migrate mid-computation -----------------------------------

namespace {

// Sums f(0..99) with a migration point every iteration, keeping all live
// state (i, acc) in the frame image — the MigThread execution model.
mig::StepOutcome sum_body(mig::ThreadState& state,
                          const std::atomic<bool>& migrate) {
  mig::Frame& f = state.top();
  std::int32_t i = f.locals.get<std::int32_t>("i");
  double acc = f.locals.get<double>("acc");
  while (i < 100) {
    if (migrate.load(std::memory_order_relaxed)) {
      f.locals.set<std::int32_t>("i", i);
      f.locals.set<double>("acc", acc);
      f.label = 1;
      return mig::StepOutcome::MigrationPoint;
    }
    acc += i * 0.5;
    ++i;
  }
  f.locals.set<std::int32_t>("i", i);
  f.locals.set<double>("acc", acc);
  return mig::StepOutcome::Finished;
}

}  // namespace

TEST(Runner, MigratesMidComputationAcrossPlatforms) {
  mig::StateSchema schema;
  schema.register_frame("sum", locals_type());

  mig::ThreadState state;
  state.rank = 1;
  state.frames.push_back(
      mig::Frame{"sum", 0, mig::StructImage(locals_type(),
                                            plat::linux_ia32())});
  state.top().locals.set<std::int32_t>("i", 0);
  state.top().locals.set<double>("acc", 0.0);

  // Source node: request migration immediately.
  std::atomic<bool> migrate{true};
  ASSERT_EQ(mig::run_until_yield(sum_body, state, migrate),
            mig::StepOutcome::MigrationPoint);

  // Ship to a big-endian skeleton and finish there.
  auto [src_ep, dst_ep] = msg::make_channel_pair();
  std::thread sender([&] {
    mig::send_state(*src_ep, state, plat::linux_ia32());
  });
  mig::ThreadState resumed =
      mig::receive_state(*dst_ep, schema, plat::solaris_sparc32());
  sender.join();

  EXPECT_EQ(resumed.top().label, 1u);
  mig::run_to_completion(sum_body, resumed);
  // Sum of i*0.5 for i in [0,100).
  EXPECT_EQ(resumed.top().locals.get<double>("acc"), 2475.0);
  EXPECT_EQ(resumed.top().locals.get<std::int32_t>("i"), 100);
}

TEST(Runner, RunToCompletionWithoutMigration) {
  mig::ThreadState state;
  state.rank = 0;
  state.frames.push_back(
      mig::Frame{"sum", 0, mig::StructImage(locals_type(),
                                            plat::linux_ia32())});
  mig::run_to_completion(sum_body, state);
  EXPECT_EQ(state.top().locals.get<double>("acc"), 2475.0);
}

// ---- portable heap ------------------------------------------------------------

TEST(PortableHeap, AllocateAccessFree) {
  mig::PortableHeap heap(plat::linux_ia32());
  const std::uint64_t a = heap.allocate("locals", locals_type());
  const std::uint64_t b = heap.allocate("locals", locals_type());
  EXPECT_NE(a, mig::PortableHeap::kNullId);
  EXPECT_NE(a, b);
  heap.object(a).set<std::int32_t>("i", 7);
  heap.object(b).set<std::int32_t>("i", 8);
  EXPECT_EQ(heap.object(a).get<std::int32_t>("i"), 7);
  EXPECT_EQ(heap.object(b).get<std::int32_t>("i"), 8);
  EXPECT_EQ(heap.size(), 2u);
  heap.deallocate(a);
  EXPECT_FALSE(heap.contains(a));
  EXPECT_THROW(heap.object(a), std::out_of_range);
  EXPECT_THROW(heap.deallocate(a), std::out_of_range);
}

TEST(PortableHeap, IdsAreTokensAcrossObjects) {
  // One heap object pointing at another by id; ids survive migration.
  auto node_type = tags::TypeDesc::struct_of(
      "node", {{"value", tags::t_int()},
               {"next", tags::TypeDesc::pointer()}});
  mig::PortableHeap heap(plat::linux_ia32());
  const std::uint64_t head = heap.allocate("node", node_type);
  const std::uint64_t tail = heap.allocate("node", node_type);
  heap.object(head).set<std::uint64_t>("next", tail);
  heap.object(tail).set<std::uint64_t>("next", mig::PortableHeap::kNullId);
  heap.object(tail).set<std::int32_t>("value", 42);
  const std::uint64_t link = heap.object(head).get<std::uint64_t>("next");
  EXPECT_EQ(heap.object(link).get<std::int32_t>("value"), 42);
}

TEST(PortableHeap, SnapshotTravelsWithThreadState) {
  mig::StateSchema schema;
  schema.register_frame("worker", locals_type());
  schema.register_heap_type("locals", locals_type());

  mig::PortableHeap heap(plat::linux_ia32());
  const std::uint64_t id = heap.allocate("locals", locals_type());
  heap.object(id).set<double>("acc", 9.75);

  mig::ThreadState state;
  state.rank = 1;
  state.frames.push_back(mig::Frame{
      "worker", 0, mig::StructImage(locals_type(), plat::linux_ia32())});
  state.heap = heap.snapshot();

  const auto packed = mig::pack_state(state);
  mig::ThreadState arrived = mig::unpack_state(
      packed, schema, plat::solaris_sparc32(),
      msg::PlatformSummary::of(plat::linux_ia32()));
  mig::PortableHeap restored = mig::PortableHeap::restore(
      std::move(arrived.heap), plat::solaris_sparc32());
  EXPECT_TRUE(restored.contains(id));
  EXPECT_EQ(restored.object(id).get<double>("acc"), 9.75);
  // New allocations continue above the migrated ids.
  EXPECT_GT(restored.allocate("locals", locals_type()), id);
}

TEST(PortableHeap, RestoreRejectsDuplicateIds) {
  mig::PortableHeap heap(plat::linux_ia32());
  const std::uint64_t id = heap.allocate("locals", locals_type());
  auto snap = heap.snapshot();
  snap.push_back(mig::HeapObject{
      id, "locals", mig::StructImage(locals_type(), plat::linux_ia32())});
  EXPECT_THROW(
      mig::PortableHeap::restore(std::move(snap), plat::linux_ia32()),
      std::invalid_argument);
}

// ---- file I/O migration ---------------------------------------------------------

TEST(FileMigration, RecordPackUnpackRoundTrip) {
  mig::FileStateRecord r;
  r.path = "/tmp/hdsm-some-file.dat";
  r.mode = mig::FileMode::ReadWrite;
  r.offset = 0x123456789abcull;
  const auto bytes = r.pack();
  EXPECT_EQ(mig::FileStateRecord::unpack(bytes.data(), bytes.size()), r);
}

TEST(FileMigration, RecordUnpackRejectsGarbage) {
  std::vector<std::byte> junk(3, std::byte{0xff});
  EXPECT_THROW(mig::FileStateRecord::unpack(junk.data(), junk.size()),
               std::invalid_argument);
}

TEST(FileMigration, WriterMigratesMidFile) {
  const std::string path = ::testing::TempDir() + "hdsm_file_mig.txt";
  ::unlink(path.c_str());
  mig::FileStateRecord record;
  {
    auto f = mig::MigratableFile::open(path, mig::FileMode::Write);
    f.write("hello ", 6);
    record = f.capture();  // "thread migrates" with the file half-written
  }
  {
    auto g = mig::MigratableFile::restore(record);
    EXPECT_EQ(g.tell(), 6u);
    g.write("world", 5);
  }
  auto r = mig::MigratableFile::open(path, mig::FileMode::Read);
  char buf[32] = {};
  EXPECT_EQ(r.read(buf, sizeof(buf)), 11u);
  EXPECT_STREQ(buf, "hello world");
  ::unlink(path.c_str());
}

TEST(FileMigration, ReaderResumesAtOffset) {
  const std::string path = ::testing::TempDir() + "hdsm_file_read.txt";
  {
    auto w = mig::MigratableFile::open(path, mig::FileMode::Write);
    w.write("0123456789", 10);
  }
  mig::FileStateRecord record;
  {
    auto f = mig::MigratableFile::open(path, mig::FileMode::Read);
    char buf[4];
    EXPECT_EQ(f.read(buf, 4), 4u);
    record = f.capture();
  }
  auto g = mig::MigratableFile::restore(record);
  char buf[8] = {};
  EXPECT_EQ(g.read(buf, 6), 6u);
  EXPECT_STREQ(buf, "456789");
  ::unlink(path.c_str());
}

TEST(FileMigration, RestoreNeverTruncates) {
  const std::string path = ::testing::TempDir() + "hdsm_file_notrunc.txt";
  mig::FileStateRecord record;
  {
    auto w = mig::MigratableFile::open(path, mig::FileMode::Write);
    w.write("precious", 8);
    w.seek(3);
    record = w.capture();
  }
  auto g = mig::MigratableFile::restore(record);  // Write mode, reopened
  EXPECT_EQ(g.tell(), 3u);
  auto r = mig::MigratableFile::open(path, mig::FileMode::Read);
  char buf[16] = {};
  EXPECT_EQ(r.read(buf, sizeof(buf)), 8u);  // content intact
  ::unlink(path.c_str());
}

// ---- checkpoint / restore -------------------------------------------------------

TEST(Checkpoint, RoundTripsAcrossPlatformsViaFile) {
  const std::string path = ::testing::TempDir() + "hdsm_ckpt.bin";
  mig::StateSchema schema;
  schema.register_frame("worker", locals_type());
  schema.register_heap_type("locals", locals_type());

  mig::ThreadState state;
  state.rank = 3;
  mig::StructImage locals(locals_type(), plat::linux_ia32());
  locals.set<std::int32_t>("i", 41);
  locals.set<double>("acc", -3.5);
  state.frames.push_back(mig::Frame{"worker", 7, std::move(locals)});
  mig::StructImage obj(locals_type(), plat::linux_ia32());
  obj.set<std::int32_t>("i", 9);
  state.heap.push_back(mig::HeapObject{5, "locals", std::move(obj)});

  mig::checkpoint_to_file(state, plat::linux_ia32(), path);
  // Restore on a big-endian target, as after a crash + re-dispatch.
  const mig::ThreadState back =
      mig::restore_from_file(path, schema, plat::solaris_sparc64());
  EXPECT_EQ(back.rank, 3u);
  EXPECT_EQ(back.top().label, 7u);
  EXPECT_EQ(back.top().locals.get<std::int32_t>("i"), 41);
  EXPECT_EQ(back.top().locals.get<double>("acc"), -3.5);
  ASSERT_EQ(back.heap.size(), 1u);
  EXPECT_EQ(back.heap[0].image.get<std::int32_t>("i"), 9);
  ::unlink(path.c_str());
}

TEST(Checkpoint, ResumableComputationSurvivesRestart) {
  const std::string path = ::testing::TempDir() + "hdsm_ckpt_resume.bin";
  mig::StateSchema schema;
  schema.register_frame("sum", locals_type());

  mig::ThreadState state;
  state.rank = 1;
  state.frames.push_back(mig::Frame{
      "sum", 0, mig::StructImage(locals_type(), plat::linux_ia32())});
  std::atomic<bool> stop_now{true};
  ASSERT_EQ(mig::run_until_yield(sum_body, state, stop_now),
            mig::StepOutcome::MigrationPoint);
  mig::checkpoint_to_file(state, plat::linux_ia32(), path);

  // "Crash"; restore on another platform and finish.
  mig::ThreadState resumed =
      mig::restore_from_file(path, schema, plat::solaris_sparc32());
  mig::run_to_completion(sum_body, resumed);
  EXPECT_EQ(resumed.top().locals.get<double>("acc"), 2475.0);
  ::unlink(path.c_str());
}

TEST(Checkpoint, CorruptFilesRejected) {
  const std::string path = ::testing::TempDir() + "hdsm_ckpt_bad.bin";
  {
    auto f = mig::MigratableFile::open(path, mig::FileMode::Write);
    f.write("not a checkpoint at all", 23);
  }
  mig::StateSchema schema;
  EXPECT_THROW(mig::restore_from_file(path, schema, plat::linux_ia32()),
               std::runtime_error);
  ::unlink(path.c_str());
  EXPECT_THROW(mig::restore_from_file(path, schema, plat::linux_ia32()),
               std::system_error);
}

// ---- socket/session migration -----------------------------------------------------

TEST(SessionMigration, RecordRoundTrip) {
  mig::SessionRecord r;
  r.port = 4242;
  r.rank = 9;
  r.next_seq = 77;
  const auto bytes = r.pack();
  EXPECT_EQ(mig::SessionRecord::unpack(bytes.data(), bytes.size()), r);
}

TEST(SessionMigration, DeduperDropsReplays) {
  mig::SessionDeduper dedup;
  EXPECT_TRUE(dedup.accept(1, 1));
  EXPECT_TRUE(dedup.accept(1, 2));
  EXPECT_FALSE(dedup.accept(1, 2));  // replay after reconnect
  EXPECT_FALSE(dedup.accept(1, 1));
  EXPECT_TRUE(dedup.accept(2, 1));   // other sessions unaffected
  EXPECT_TRUE(dedup.accept(1, 3));
  EXPECT_EQ(dedup.last_seen(1), 3u);
}

TEST(SessionMigration, SessionSurvivesReconnectAcrossNodes) {
  hdsm::msg::TcpListener listener(0);
  std::vector<std::uint64_t> seen;  // payload values accepted by the server
  mig::SessionDeduper dedup;
  std::atomic<bool> server_done{false};

  std::thread server([&] {
    // Two connections: before and after the "migration".
    for (int conn = 0; conn < 2; ++conn) {
      hdsm::msg::EndpointPtr ep = listener.accept();
      try {
        for (;;) {
          const hdsm::msg::Message m = ep->recv();
          const mig::SessionMessage sm = mig::parse_session_message(m);
          if (dedup.accept(sm.rank, sm.seq)) {
            seen.push_back(std::to_integer<std::uint64_t>(sm.payload.at(0)));
          }
        }
      } catch (const hdsm::msg::ChannelClosed&) {
        // next connection
      }
    }
    server_done = true;
  });

  mig::SessionRecord mid_record;
  {
    mig::MigratableSession s(listener.port(), /*rank=*/5);
    s.send({std::byte{10}});
    s.send({std::byte{11}});
    mid_record = s.capture();  // state crosses to another node
    s.close();
  }
  {
    mig::MigratableSession resumed(mid_record);
    // A cautious resume replays the last message; the server dedupes.
    EXPECT_EQ(resumed.next_seq(), 3u);
    resumed.send({std::byte{12}});
    resumed.send({std::byte{13}});
    resumed.close();
  }
  server.join();
  EXPECT_TRUE(server_done.load());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

// ---- roles ------------------------------------------------------------------------

TEST(Roles, InitialConfiguration) {
  mig::RoleTracker rt(3, 3);
  EXPECT_EQ(rt.home_node(), 0u);
  EXPECT_EQ(rt.role(0, 0), mig::ThreadRole::Master);
  EXPECT_EQ(rt.role(0, 1), mig::ThreadRole::Local);
  EXPECT_EQ(rt.role(1, 0), mig::ThreadRole::Skeleton);
  EXPECT_EQ(rt.role(2, 2), mig::ThreadRole::Skeleton);
  EXPECT_EQ(rt.computing_node(1), 0u);
}

TEST(Roles, SlaveMigrationLocalToRemote) {
  // Figure 1: a local thread migrates out; a stub stays home; the remote
  // skeleton becomes a remote thread.
  mig::RoleTracker rt(3, 3);
  rt.migrate(1, 0, 1);
  EXPECT_EQ(rt.role(0, 1), mig::ThreadRole::Stub);
  EXPECT_EQ(rt.role(1, 1), mig::ThreadRole::Remote);
  EXPECT_EQ(rt.computing_node(1), 1u);
  // It can migrate again ("Threads can migrate again if the hosting node
  // is overloaded").
  rt.migrate(1, 1, 2);
  EXPECT_EQ(rt.role(1, 1), mig::ThreadRole::Skeleton);
  EXPECT_EQ(rt.role(2, 1), mig::ThreadRole::Remote);
  // And migrate back home, where it is local again.
  rt.migrate(1, 2, 0);
  EXPECT_EQ(rt.role(0, 1), mig::ThreadRole::Local);
  EXPECT_EQ(rt.role(2, 1), mig::ThreadRole::Skeleton);
}

TEST(Roles, IllegalMigrationsRejected) {
  mig::RoleTracker rt(2, 2);
  EXPECT_THROW(rt.migrate(1, 1, 0), std::logic_error);  // skeleton can't move
  EXPECT_THROW(rt.migrate(1, 0, 0), std::logic_error);  // same node
  EXPECT_THROW(rt.migrate(0, 1, 0), std::logic_error);  // non-master slot 0
  EXPECT_THROW(rt.migrate(9, 0, 1), std::out_of_range);
}

TEST(Roles, MasterMigrationRehomes) {
  // §3.1: "If the master thread moves to a default thread at a remote node,
  // the latter will become the new home node.  Previous local threads
  // become remote threads, and some slave threads at the new home node are
  // activated to work as stub threads."
  mig::RoleTracker rt(2, 3);
  rt.migrate(2, 0, 1);  // slot 2 computes at node 1 first
  rt.migrate(0, 0, 1);  // master moves to node 1
  EXPECT_EQ(rt.home_node(), 1u);
  EXPECT_EQ(rt.role(1, 0), mig::ThreadRole::Master);
  EXPECT_EQ(rt.role(0, 0), mig::ThreadRole::Stub);
  // Old home's local slot 1 is now remote relative to the new home.
  EXPECT_EQ(rt.role(0, 1), mig::ThreadRole::Remote);
  // New home: unused skeleton activated as stub; the thread computing
  // there became local.
  EXPECT_EQ(rt.role(1, 1), mig::ThreadRole::Stub);
  EXPECT_EQ(rt.role(1, 2), mig::ThreadRole::Local);
}
