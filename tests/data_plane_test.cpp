// Tests for the two-phase (validate-then-apply) parallel data plane:
// all-or-nothing payload application, the RAII re-arm guarantee of
// apply_payload_bulk, zero-copy single-buffer packing, the worker pool,
// the per-(sender, row) conversion-plan cache, and sequential/parallel
// equivalence of both collect and apply.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dsm/global_space.hpp"
#include "dsm/home.hpp"
#include "dsm/sync_engine.hpp"
#include "dsm/trace.hpp"
#include "dsm/update.hpp"
#include "dsm/worker_pool.hpp"
#include "msg/message.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
using tags::TypeDesc;

namespace {

tags::TypePtr small_gthv(std::uint64_t n = 64) {
  return TypeDesc::struct_of("G", {{"GThP", TypeDesc::pointer()},
                                   {"A", TypeDesc::array(tags::t_int(), n)},
                                   {"D", TypeDesc::array(tags::t_double(), 8)},
                                   {"n", tags::t_int()}});
}

/// A multi-page GThV big enough to clear the default parallel grain.
tags::TypePtr big_gthv(std::uint64_t ints = 1 << 18) {
  return TypeDesc::struct_of(
      "G", {{"A", TypeDesc::array(tags::t_int(), ints)},
            {"D", TypeDesc::array(tags::t_double(), 1 << 12)}});
}

std::vector<std::byte> image_snapshot(const dsm::GlobalSpace& g) {
  const std::byte* base = g.region().data();
  return std::vector<std::byte>(base, base + g.table().image_size());
}

dsm::SyncOptions lanes(unsigned n) {
  dsm::SyncOptions o;
  o.conv_threads = n;
  return o;
}

}  // namespace

// ---- worker pool -----------------------------------------------------------

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  dsm::WorkerPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  EXPECT_EQ(pool.lanes(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPool, ReusableAcrossJobs) {
  dsm::WorkerPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(17, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(WorkerPool, FirstExceptionRethrownAfterDrain) {
  dsm::WorkerPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t i) {
                 ++ran;
                 if (i == 7) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // Every index was still claimed and finished: no task left behind.
  EXPECT_EQ(ran.load(), 64);
  // The pool is fully usable afterwards.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(WorkerPool, ZeroWorkersRunsOnCaller) {
  dsm::WorkerPool pool(0);
  EXPECT_EQ(pool.lanes(), 1u);
  int sum = 0;  // no atomics needed: everything runs on this thread
  pool.run(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

// ---- atomic (all-or-nothing) application -----------------------------------

TEST(AtomicApply, ValidPrefixIsNotAppliedWhenALaterBlockIsMalformed) {
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine engine(receiver, {}, rs);
  const auto summary = msg::PlatformSummary::of(plat::linux_ia32());

  dsm::UpdateBlock good;
  good.row = 2;  // "A"
  good.first_elem = 0;
  good.tag = "(4,1)";
  good.data.assign(4, std::byte{0x5a});
  dsm::UpdateBlock bad = good;
  bad.row = 999;  // validation fails on the *second* block

  const std::vector<std::byte> before = image_snapshot(receiver);
  EXPECT_THROW(engine.apply_payload(dsm::encode_update_blocks({good, bad}),
                                    summary),
               std::runtime_error);
  // Phase 1 rejected the payload before phase 2 wrote anything: the valid
  // first block must not have landed (the pre-refactor engine interleaved
  // validate and apply, leaving a torn update here).
  EXPECT_EQ(image_snapshot(receiver), before);
  EXPECT_EQ(rs.updates_received, 0u);

  // The same good block alone still applies.
  engine.apply_payload(dsm::encode_update_blocks({good}), summary);
  EXPECT_EQ(receiver.view<std::int32_t>("A").get(0), 0x5a5a5a5a);
}

TEST(AtomicApply, BulkRearmsTrackingOnThrow) {
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine engine(receiver, {}, rs);
  const auto summary = msg::PlatformSummary::of(plat::linux_ia32());

  receiver.region().begin_tracking();
  receiver.view<std::int32_t>("A").set(1, 11);
  (void)engine.collect_runs();  // consume the interval; region re-armed

  // Mid-interval, a malformed payload arrives on the bulk path: one valid
  // block, then one whose data length disagrees with its tag.
  dsm::UpdateBlock good;
  good.row = 2;
  good.first_elem = 3;
  good.tag = "(4,1)";
  good.data.assign(4, std::byte{0x77});
  dsm::UpdateBlock torn;
  torn.row = 2;
  torn.first_elem = 10;
  torn.tag = "(4,2)";
  torn.data.assign(4, std::byte{0x13});  // 4 bytes, tag says 8

  const std::vector<std::byte> before = image_snapshot(receiver);
  EXPECT_THROW(engine.apply_payload_bulk(
                   dsm::encode_update_blocks({good, torn}), summary),
               std::runtime_error);

  // No torn bytes, and write tracking is still armed (the pre-guard code
  // skipped rearm() on the exception path, leaving every later write
  // untracked for the rest of the run).
  EXPECT_EQ(image_snapshot(receiver), before);
  EXPECT_TRUE(receiver.region().tracking());
  receiver.view<std::int32_t>("A").set(5, 55);
  const auto runs = engine.collect_runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].first_elem, 5u);
  EXPECT_EQ(runs[0].count, 1u);
  receiver.region().end_tracking();
}

TEST(AtomicApply, HomeDetachesSenderOfMalformedPayload) {
  // End to end through the home node: a malformed-block unlock payload
  // must apply nothing to the master image, leave the home operational,
  // and detach the sender.
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(small_gthv(), plat::linux_ia32(), hopts);
  msg::EndpointPtr ep = home.attach(1);
  home.start();
  const std::string tag = home.space().image_tag_text();

  const auto raw = [](msg::MsgType t, std::uint32_t seq, std::uint32_t sync_id,
                      const std::string& hello_tag = "",
                      std::vector<std::byte> payload = {}) {
    msg::Message m;
    m.type = t;
    m.seq = seq;
    m.sync_id = sync_id;
    m.rank = 1;
    m.sender = msg::PlatformSummary::of(plat::linux_ia32());
    m.tag = hello_tag;
    m.payload = std::move(payload);
    return m;
  };

  ep->send(raw(msg::MsgType::Hello, 0, /*epoch=*/1, tag));
  ep->send(raw(msg::MsgType::LockRequest, 1, 0));
  ASSERT_EQ(ep->recv().type, msg::MsgType::LockGrant);

  dsm::UpdateBlock good;
  good.row = 2;
  good.first_elem = 0;
  good.tag = "(4,1)";
  good.data.assign(4, std::byte{0x21});
  dsm::UpdateBlock bad = good;
  bad.first_elem = 63;
  bad.tag = "(4,2)";  // overruns the row
  bad.data.assign(8, std::byte{0x42});
  ep->send(raw(msg::MsgType::UnlockRequest, 2, 0, "",
               dsm::encode_update_blocks({good, bad})));

  // The home detaches rank 1 instead of acking.
  ASSERT_TRUE([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const dsm::TraceEvent& e : log.snapshot()) {
        if (e.kind == dsm::TraceEvent::Kind::Detached && e.rank == 1) {
          return true;
        }
      }
      std::this_thread::yield();
    }
    return false;
  }());
  EXPECT_TRUE(home.active_ranks().empty());

  // Nothing landed — not even the valid first block.
  home.lock(0);
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(0), 0);
  home.space().view<std::int32_t>("A").set(7, 77);  // still tracked
  home.unlock(0);
  home.stop();
}

// ---- zero-copy packing -----------------------------------------------------

TEST(ZeroCopyPack, PayloadByteIdenticalToGoldenEncoding) {
  // pack_payload writes blocks straight into the wire buffer; pin its byte
  // form against the reference block codec: decoding the payload and
  // re-encoding the blocks must reproduce the exact same bytes.
  for (const bool binary : {false, true}) {
    dsm::SyncOptions opts;
    opts.binary_tags = binary;
    dsm::GlobalSpace g(small_gthv(), plat::solaris_sparc32());
    dsm::ShareStats s1;
    dsm::SyncEngine engine(g, opts, s1);

    g.region().begin_tracking();
    auto a = g.view<std::int32_t>("A");
    for (int i = 0; i < 20; ++i) a.set(i * 3, i - 9);
    g.view<double>("D").set(4, 0.125);
    g.view<std::uint64_t>("GThP").set(0xbeef);
    const auto runs = engine.collect_runs();
    g.region().end_tracking();
    ASSERT_FALSE(runs.empty());

    const std::vector<std::byte> wire = engine.pack_payload(runs);
    const auto blocks = dsm::decode_update_blocks(wire);
    EXPECT_EQ(blocks.size(), runs.size());
    EXPECT_EQ(wire, dsm::encode_update_blocks(blocks))
        << (binary ? "binary tags" : "ascii tags");
  }
}

// ---- sequential / parallel equivalence -------------------------------------

TEST(ParallelDataPlane, CollectMatchesSequential) {
  // Same writes on two identical spaces; one collects sequentially, one
  // with 4 lanes.  The run lists must be identical, including runs that
  // span worker-chunk seams (the full-array write makes every page dirty,
  // so the seam-coalescing path is exercised).
  dsm::GlobalSpace g_seq(big_gthv(), plat::linux_ia32());
  dsm::GlobalSpace g_par(big_gthv(), plat::linux_ia32());
  dsm::ShareStats s_seq, s_par;
  dsm::SyncEngine e_seq(g_seq, lanes(1), s_seq);
  dsm::SyncEngine e_par(g_par, lanes(4), s_par);
  ASSERT_EQ(e_par.effective_lanes(), 4u);

  for (dsm::GlobalSpace* g : {&g_seq, &g_par}) {
    g->region().begin_tracking();
    auto a = g->view<std::int32_t>("A");
    for (std::uint64_t i = 0; i < a.size(); ++i) {
      a.set(i, static_cast<std::int32_t>(i * 2654435761u));
    }
    auto d = g->view<double>("D");
    for (std::uint64_t i = 0; i < d.size(); i += 3) d.set(i, 0.5 * i);
  }
  const auto runs_seq = e_seq.collect_runs();
  const auto runs_par = e_par.collect_runs();
  g_seq.region().end_tracking();
  g_par.region().end_tracking();

  EXPECT_EQ(runs_par, runs_seq);
  EXPECT_EQ(s_seq.parallel_batches, 0u);
  EXPECT_GT(s_par.parallel_batches, 0u);
  EXPECT_GT(s_par.conv_threads, 1u);
}

TEST(ParallelDataPlane, ScatteredCollectMatchesSequential) {
  dsm::GlobalSpace g_seq(big_gthv(), plat::linux_ia32());
  dsm::GlobalSpace g_par(big_gthv(), plat::linux_ia32());
  dsm::ShareStats s_seq, s_par;
  dsm::SyncEngine e_seq(g_seq, lanes(1), s_seq);
  dsm::SyncEngine e_par(g_par, lanes(3), s_par);

  for (dsm::GlobalSpace* g : {&g_seq, &g_par}) {
    g->region().begin_tracking();
    auto a = g->view<std::int32_t>("A");
    // Scattered single-element writes across many pages, plus a dense
    // band, so runs of every shape cross the chunking.
    for (std::uint64_t i = 0; i < a.size(); i += 997) a.set(i, 7);
    for (std::uint64_t i = 40000; i < 48000; ++i) a.set(i, -1);
  }
  const auto runs_seq = e_seq.collect_runs();
  const auto runs_par = e_par.collect_runs();
  g_seq.region().end_tracking();
  g_par.region().end_tracking();
  EXPECT_EQ(runs_par, runs_seq);
}

TEST(ParallelDataPlane, ApplyMatchesSequentialHeterogeneous) {
  // Big-endian sender, little-endian receivers: the bulk-swap route runs
  // on every block.  A 4-lane receiver must produce the same image as a
  // sequential one.
  dsm::GlobalSpace sender(big_gthv(), plat::solaris_sparc32());
  dsm::ShareStats ss;
  dsm::SyncEngine se(sender, lanes(1), ss);
  sender.region().begin_tracking();
  auto a = sender.view<std::int32_t>("A");
  for (std::uint64_t i = 0; i < a.size(); i += 2) {
    a.set(i, static_cast<std::int32_t>(i ^ 0x55aa));
  }
  auto d = sender.view<double>("D");
  for (std::uint64_t i = 0; i < d.size(); ++i) d.set(i, i * 1.25 - 3.0);
  const std::vector<std::byte> payload = se.collect_payload();
  sender.region().end_tracking();

  const auto summary = msg::PlatformSummary::of(plat::solaris_sparc32());
  dsm::GlobalSpace r_seq(big_gthv(), plat::linux_ia32());
  dsm::GlobalSpace r_par(big_gthv(), plat::linux_ia32());
  dsm::ShareStats s_seq, s_par;
  dsm::SyncEngine e_seq(r_seq, lanes(1), s_seq);
  dsm::SyncEngine e_par(r_par, lanes(4), s_par);

  const auto runs_seq = e_seq.apply_payload(payload, summary);
  const auto runs_par = e_par.apply_payload(payload, summary);
  EXPECT_EQ(runs_par, runs_seq);
  EXPECT_EQ(image_snapshot(r_par), image_snapshot(r_seq));
  EXPECT_EQ(s_seq.parallel_batches, 0u);
  EXPECT_GT(s_par.parallel_batches, 0u);

  auto ra = r_par.view<std::int32_t>("A");
  EXPECT_EQ(ra.get(0), 0 ^ 0x55aa);
  EXPECT_EQ(ra.get(1000), static_cast<std::int32_t>(1000 ^ 0x55aa));
  EXPECT_EQ(r_par.view<double>("D").get(5), 5 * 1.25 - 3.0);
}

TEST(ParallelDataPlane, SmallPayloadStaysSequential) {
  // A single run below the grain must not pay pool dispatch.
  dsm::GlobalSpace sender(small_gthv(), plat::linux_ia32());
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats ss, rs;
  dsm::SyncEngine se(sender, lanes(4), ss);
  dsm::SyncEngine re(receiver, lanes(4), rs);

  sender.region().begin_tracking();
  sender.view<std::int32_t>("A").set(0, 1);
  const std::vector<std::byte> payload = se.collect_payload();
  sender.region().end_tracking();
  re.apply_payload(payload, msg::PlatformSummary::of(plat::linux_ia32()));

  EXPECT_EQ(ss.parallel_batches, 0u);
  EXPECT_EQ(rs.parallel_batches, 0u);
  EXPECT_EQ(receiver.view<std::int32_t>("A").get(0), 1);
}

// ---- conversion-plan cache -------------------------------------------------

TEST(PlanCache, RepeatedRowsHitAfterFirstParse) {
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine engine(receiver, {}, rs);
  const auto summary = msg::PlatformSummary::of(plat::solaris_sparc32());

  // 16 disjoint single-element blocks of the same row: identical tags.
  std::vector<dsm::UpdateBlock> blocks;
  for (int i = 0; i < 16; ++i) {
    dsm::UpdateBlock b;
    b.row = 2;
    b.first_elem = static_cast<std::uint64_t>(i * 2);
    b.tag = "(4,1)";
    b.data.assign(4, std::byte{static_cast<unsigned char>(i)});
    blocks.push_back(std::move(b));
  }
  const auto payload = dsm::encode_update_blocks(blocks);

  engine.apply_payload(payload, summary);
  EXPECT_EQ(rs.plan_cache_misses, 1u);
  EXPECT_EQ(rs.plan_cache_hits, 15u);

  // Second application of the same payload: pure hits.
  engine.apply_payload(payload, summary);
  EXPECT_EQ(rs.plan_cache_misses, 1u);
  EXPECT_EQ(rs.plan_cache_hits, 31u);

  // A different count re-parses (the tag text changed) once.
  dsm::UpdateBlock wide;
  wide.row = 2;
  wide.first_elem = 40;
  wide.tag = "(4,3)";
  wide.data.assign(12, std::byte{1});
  engine.apply_payload(dsm::encode_update_blocks({wide}), summary);
  EXPECT_EQ(rs.plan_cache_misses, 2u);
}

TEST(PlanCache, DistinctSendersGetDistinctCaches) {
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine engine(receiver, {}, rs);

  dsm::UpdateBlock b;
  b.row = 2;
  b.first_elem = 0;
  b.tag = "(4,1)";
  b.data.assign(4, std::byte{3});
  const auto payload = dsm::encode_update_blocks({b});

  engine.apply_payload(payload, msg::PlatformSummary::of(plat::linux_ia32()));
  engine.apply_payload(payload,
                       msg::PlatformSummary::of(plat::solaris_sparc32()));
  // Each sender platform planned its own route: two misses, no hits.
  EXPECT_EQ(rs.plan_cache_misses, 2u);
  EXPECT_EQ(rs.plan_cache_hits, 0u);
  // Same senders again: hits.
  engine.apply_payload(payload, msg::PlatformSummary::of(plat::linux_ia32()));
  EXPECT_EQ(rs.plan_cache_hits, 1u);
}

TEST(PlanCache, DisabledCacheCountsNothingAndStillApplies) {
  dsm::SyncOptions opts;
  opts.plan_cache = false;
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine engine(receiver, opts, rs);

  dsm::UpdateBlock b;
  b.row = 2;
  b.first_elem = 0;
  b.tag = "(4,2)";
  b.data.assign(8, std::byte{9});
  const auto summary = msg::PlatformSummary::of(plat::solaris_sparc32());
  engine.apply_payload(dsm::encode_update_blocks({b}), summary);
  engine.apply_payload(dsm::encode_update_blocks({b}), summary);
  EXPECT_EQ(rs.plan_cache_hits, 0u);
  EXPECT_EQ(rs.plan_cache_misses, 0u);
  EXPECT_EQ(receiver.view<std::int32_t>("A").get(0), 0x09090909);
}

TEST(PlanCache, RejectedBlockDoesNotPoisonTheCache) {
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine engine(receiver, {}, rs);
  const auto summary = msg::PlatformSummary::of(plat::linux_ia32());

  // A tag whose pointer-ness mismatches the row fails validation *after*
  // parsing; the cache entry must not be left claiming it is valid.
  dsm::UpdateBlock bad;
  bad.row = 2;
  bad.first_elem = 0;
  bad.tag = "(4,-1)";  // pointer tag for the int row
  bad.data.assign(4, std::byte{1});
  EXPECT_THROW(engine.apply_payload(dsm::encode_update_blocks({bad}), summary),
               std::runtime_error);

  // An identical tag must re-validate (and fail again), not hit a cached
  // plan and slip through.
  EXPECT_THROW(engine.apply_payload(dsm::encode_update_blocks({bad}), summary),
               std::runtime_error);

  dsm::UpdateBlock good;
  good.row = 2;
  good.first_elem = 0;
  good.tag = "(4,1)";
  good.data.assign(4, std::byte{2});
  engine.apply_payload(dsm::encode_update_blocks({good}), summary);
  EXPECT_EQ(receiver.view<std::int32_t>("A").get(0), 0x02020202);
}

// ---- merge_runs edge cases -------------------------------------------------

TEST(MergeRunsEdges, AdjacentButNotOverlappingRunsUnify) {
  // collect_runs under coalesce_runs=false can legitimately produce
  // touching runs; the pending-set merge must still unify them.
  std::vector<hdsm::idx::UpdateRun> into = {{2, 0, 3}};
  dsm::merge_runs(into, {{2, 3, 4}});
  ASSERT_EQ(into.size(), 1u);
  EXPECT_EQ(into[0].first_elem, 0u);
  EXPECT_EQ(into[0].count, 7u);

  // Same row, gap of one element: stays split.
  dsm::merge_runs(into, {{2, 8, 2}});
  ASSERT_EQ(into.size(), 2u);
  EXPECT_EQ(into[1].first_elem, 8u);
}

TEST(MergeRunsEdges, DuplicateIdenticalRunsCollapse) {
  std::vector<hdsm::idx::UpdateRun> into = {{4, 10, 5}};
  dsm::merge_runs(into, {{4, 10, 5}, {4, 10, 5}});
  ASSERT_EQ(into.size(), 1u);
  EXPECT_EQ(into[0].row, 4u);
  EXPECT_EQ(into[0].first_elem, 10u);
  EXPECT_EQ(into[0].count, 5u);
}

TEST(MergeRunsEdges, ContainedAndSpanningRuns) {
  // A run already covering the whole row absorbs anything inside it, and
  // a partial run extends to the row-spanning union.
  std::vector<hdsm::idx::UpdateRun> into = {{2, 0, 64}};
  dsm::merge_runs(into, {{2, 10, 5}});
  ASSERT_EQ(into.size(), 1u);
  EXPECT_EQ(into[0].count, 64u);

  std::vector<hdsm::idx::UpdateRun> grow = {{2, 0, 40}};
  dsm::merge_runs(grow, {{2, 30, 34}});
  ASSERT_EQ(grow.size(), 1u);
  EXPECT_EQ(grow[0].first_elem, 0u);
  EXPECT_EQ(grow[0].count, 64u);

  // Merging never crosses rows even when element indexes touch.
  std::vector<hdsm::idx::UpdateRun> rows = {{2, 60, 4}};
  dsm::merge_runs(rows, {{3, 0, 2}});
  ASSERT_EQ(rows.size(), 2u);
}
