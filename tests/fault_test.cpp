// Fault-injection tests for the reliability layer (docs/RELIABILITY.md):
// FaultyEndpoint semantics, and the DSD protocol's recovery — retransmit,
// duplicate suppression, reconnect, graceful degradation — under every
// fault mode, over in-process channels and over real loopback TCP.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "dsm/trace.hpp"
#include "dsm/update.hpp"
#include "msg/faulty.hpp"
#include "msg/tcp.hpp"
#include "test_time.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kElems = 64;

tags::TypePtr gthv() {
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), kElems)}});
}

msg::Message tagged(int n) {
  msg::Message m;
  m.type = msg::MsgType::Hello;
  m.sync_id = static_cast<std::uint32_t>(n);
  return m;
}

/// A hand-crafted protocol frame from rank 1, for driving a HomeNode
/// directly (no RemoteThread) in the targeted reliability tests below.
msg::Message raw(msg::MsgType t, std::uint32_t seq, std::uint32_t sync_id,
                 const std::string& tag = "",
                 std::vector<std::byte> payload = {}) {
  msg::Message m;
  m.type = t;
  m.seq = seq;
  m.sync_id = sync_id;
  m.rank = 1;
  m.sender = msg::PlatformSummary::of(plat::linux_ia32());
  m.tag = tag;
  m.payload = std::move(payload);
  return m;
}

/// An UnlockRequest/BarrierEnter payload carrying zero update blocks.
std::vector<std::byte> no_blocks() { return dsm::encode_update_blocks({}); }

/// Poll `log` until `pred(snapshot)` holds (the home's receiver threads
/// run asynchronously from the test body).
template <typename Pred>
bool wait_for_trace(const dsm::TraceLog& log, Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred(log.snapshot())) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

/// Tight schedule so fault tests finish in milliseconds, with enough
/// retries to ride out high loss rates.  HDSM_TEST_TIME_SCALE stretches
/// each wait for slow (sanitized) runs — see tests/test_time.hpp.
dsm::RetryPolicy fast_retry() {
  dsm::RetryPolicy p;
  p.timeout = hdsm::test::scaled(25ms);
  p.backoff = 1.5;
  p.max_timeout = hdsm::test::scaled(200ms);
  p.max_retries = 12;
  return p;
}

/// The increments-under-one-lock workload every convergence test runs:
/// deterministic per-rank op streams, so the expected array is computable
/// without running the cluster.
std::vector<std::pair<std::uint64_t, std::int64_t>> ops_of(
    std::uint32_t rank, int ops) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> v;
  std::mt19937_64 rng(500 + rank);
  for (int i = 0; i < ops; ++i) {
    v.emplace_back(rng() % kElems,
                   static_cast<std::int64_t>(rng() % 100) - 50);
  }
  return v;
}

void run_workload(dsm::RemoteThread& remote, int ops) {
  for (const auto& [idx, delta] : ops_of(remote.rank(), ops)) {
    remote.lock(0);
    auto a = remote.space().view<std::int64_t>("A");
    a.set(idx, a.get(idx) + delta);
    remote.unlock(0);
  }
  remote.barrier(0);
  remote.join();
}

std::vector<std::int64_t> expected_array(std::uint32_t num_remotes, int ops) {
  std::vector<std::int64_t> e(kElems, 0);
  for (std::uint32_t r = 1; r <= num_remotes; ++r) {
    for (const auto& [idx, delta] : ops_of(r, ops)) e[idx] += delta;
  }
  return e;
}

/// Run `num_remotes` faulty remotes to completion against one home and
/// check the master image matches the fault-free expectation and the
/// protocol trace validates.
void converge_under(const msg::FaultOptions& fault, std::uint32_t num_remotes,
                    int ops, dsm::CodecMode codec = dsm::CodecMode::Off) {
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  home.set_barrier_count(0, num_remotes + 1);

  std::vector<std::unique_ptr<dsm::RemoteThread>> remotes;
  for (std::uint32_t r = 1; r <= num_remotes; ++r) {
    msg::FaultOptions per_remote = fault;
    per_remote.seed = fault.seed + r;  // distinct schedules per remote
    dsm::RemoteOptions ropts;
    ropts.retry = fast_retry();
    ropts.dsd.codec = codec;
    remotes.push_back(std::make_unique<dsm::RemoteThread>(
        gthv(), plat::linux_ia32(), r,
        msg::make_faulty(home.attach(r), per_remote), ropts));
  }
  home.start();

  std::vector<std::thread> threads;
  for (auto& remote : remotes) {
    threads.emplace_back([&remote, ops] { run_workload(*remote, ops); });
  }
  home.barrier(0);
  for (std::thread& t : threads) t.join();
  home.wait_all_joined();

  const std::vector<std::int64_t> expected = expected_array(num_remotes, ops);
  auto a = home.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

}  // namespace

// ---- FaultyEndpoint unit tests ---------------------------------------------

TEST(FaultyEndpoint, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    auto [a, b] = msg::make_channel_pair();
    msg::FaultOptions opts;
    opts.seed = seed;
    opts.send.drop = 0.3;
    opts.send.duplicate = 0.3;
    auto faulty = msg::make_faulty(std::move(a), opts);
    for (int i = 0; i < 64; ++i) faulty->send(tagged(i));
    std::vector<std::uint32_t> seen;
    msg::Message m;
    while (b->recv_for(m, 1ms)) seen.push_back(m.sync_id);
    return std::make_pair(faulty->counters(), seen);
  };
  const auto [c1, seen1] = run(7);
  const auto [c2, seen2] = run(7);
  EXPECT_EQ(c1.dropped, c2.dropped);
  EXPECT_EQ(c1.duplicated, c2.duplicated);
  EXPECT_EQ(seen1, seen2);  // identical delivery schedule
  EXPECT_GT(c1.dropped, 0u);
  EXPECT_GT(c1.duplicated, 0u);
  const auto [c3, seen3] = run(8);
  EXPECT_NE(seen1, seen3);  // a different seed reshuffles the schedule
}

TEST(FaultyEndpoint, DropDiscardsSilently) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.send.drop = 1.0;
  auto faulty = msg::make_faulty(std::move(a), opts);
  for (int i = 0; i < 5; ++i) faulty->send(tagged(i));  // must not throw
  msg::Message m;
  EXPECT_FALSE(b->recv_for(m, 5ms));
  EXPECT_EQ(faulty->counters().dropped, 5u);
}

TEST(FaultyEndpoint, DuplicateDeliversTwice) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.send.duplicate = 1.0;
  auto faulty = msg::make_faulty(std::move(a), opts);
  for (int i = 0; i < 3; ++i) faulty->send(tagged(i));
  std::vector<std::uint32_t> seen;
  msg::Message m;
  while (b->recv_for(m, 1ms)) seen.push_back(m.sync_id);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(faulty->counters().duplicated, 3u);
}

TEST(FaultyEndpoint, DelayDefersDelivery) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.recv.delay = 1.0;
  opts.recv.delay_ms = 20ms;
  auto faulty = msg::make_faulty(std::move(b), opts);
  a->send(tagged(1));
  const auto t0 = std::chrono::steady_clock::now();
  const msg::Message m = faulty->recv();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(m.sync_id, 1u);
  EXPECT_GE(elapsed, 20ms);
  EXPECT_EQ(faulty->counters().delayed, 1u);
}

TEST(FaultyEndpoint, ReorderPermutesWithinWindow) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.seed = 3;
  opts.send.reorder = 0.5;
  opts.send.reorder_window = 2;
  auto faulty = msg::make_faulty(std::move(a), opts);
  constexpr int kMsgs = 24;
  for (int i = 0; i < kMsgs; ++i) faulty->send(tagged(i));
  faulty->close();  // flushes any still-held messages
  std::vector<std::uint32_t> seen;
  msg::Message m;
  for (;;) {
    try {
      seen.push_back(b->recv().sync_id);
    } catch (const msg::ChannelClosed&) {
      break;
    }
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kMsgs));
  std::vector<std::uint32_t> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> identity(kMsgs);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(sorted, identity);  // nothing lost, nothing duplicated
  EXPECT_NE(seen, identity);    // but the order changed
  EXPECT_GT(faulty->counters().reordered, 0u);
  // A held message overtakes at most `reorder_window` successors.
  for (int i = 0; i < kMsgs; ++i) {
    const int at = static_cast<int>(
        std::find(seen.begin(), seen.end(), static_cast<std::uint32_t>(i)) -
        seen.begin());
    EXPECT_LE(at - i, static_cast<int>(opts.send.reorder_window))
        << "message " << i << " delivered at position " << at;
  }
}

TEST(FaultyEndpoint, ResetClosesBothSides) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.send.reset_after = 3;
  auto faulty = msg::make_faulty(std::move(a), opts);
  for (int i = 0; i < 3; ++i) faulty->send(tagged(i));
  EXPECT_THROW(faulty->send(tagged(3)), msg::ChannelClosed);
  EXPECT_EQ(faulty->counters().resets, 1u);
  msg::Message m;
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b->recv_for(m, 5ms));
  EXPECT_THROW(b->recv(), msg::ChannelClosed);  // peer observes EOF
}

TEST(FaultyEndpoint, KindFilterSparesOtherTraffic) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.send.drop = 1.0;
  opts.send.only = {msg::MsgType::LockRequest};
  auto faulty = msg::make_faulty(std::move(a), opts);
  msg::Message lock_req;
  lock_req.type = msg::MsgType::LockRequest;
  faulty->send(lock_req);   // eligible: dropped
  faulty->send(tagged(9));  // Hello: passes untouched
  const msg::Message m = b->recv();
  EXPECT_EQ(m.type, msg::MsgType::Hello);
  EXPECT_EQ(m.sync_id, 9u);
  EXPECT_EQ(faulty->counters().dropped, 1u);
}

TEST(FaultyEndpoint, CorruptFlipsPayloadBits) {
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.send.corrupt = 1.0;
  opts.send.corrupt_bits = 3;
  auto faulty = msg::make_faulty(std::move(a), opts);

  msg::Message with_payload = tagged(1);
  with_payload.payload.assign(256, std::byte{0});
  faulty->send(with_payload);
  const msg::Message got = b->recv();
  EXPECT_NE(got.payload, with_payload.payload);
  EXPECT_EQ(got.payload.size(), with_payload.payload.size());
  EXPECT_EQ(faulty->counters().corrupted, 1u);

  // Payload-less messages have no bits to flip and pass untouched.
  faulty->send(tagged(2));
  EXPECT_EQ(b->recv().sync_id, 2u);
  EXPECT_EQ(faulty->counters().corrupted, 1u);
}

TEST(FaultyEndpoint, CorruptionDoesNotReshuffleExistingSchedule) {
  // The corruption knob draws from its own RNG stream: enabling it must
  // leave a seed's drop schedule bit-for-bit identical.
  const auto delivered_with = [](double corrupt) {
    auto [a, b] = msg::make_channel_pair();
    msg::FaultOptions opts;
    opts.seed = 77;
    opts.send.drop = 0.5;
    opts.send.corrupt = corrupt;
    auto faulty = msg::make_faulty(std::move(a), opts);
    for (int i = 0; i < 64; ++i) {
      msg::Message m = tagged(i);
      m.payload.assign(32, std::byte{0xab});
      faulty->send(m);
    }
    std::vector<std::uint32_t> ids;
    msg::Message m;
    while (b->recv_for(m, std::chrono::milliseconds(0))) {
      ids.push_back(m.sync_id);
    }
    return ids;
  };
  EXPECT_EQ(delivered_with(0.0), delivered_with(1.0));
}

// ---- protocol recovery over in-process channels ----------------------------

TEST(Reliability, ConvergesUnderDrop) {
  msg::FaultOptions f;
  f.send.drop = 0.25;
  f.recv.drop = 0.25;
  converge_under(f, 2, 12);
}

TEST(Reliability, ConvergesUnderDuplication) {
  msg::FaultOptions f;
  f.send.duplicate = 1.0;  // every request sent twice
  f.recv.duplicate = 0.5;
  converge_under(f, 2, 12);
}

TEST(Reliability, ConvergesUnderDelay) {
  msg::FaultOptions f;
  f.send.delay = 0.5;
  f.send.delay_ms = 2ms;
  f.recv.delay = 0.5;
  f.recv.delay_ms = 2ms;
  converge_under(f, 2, 10);
}

TEST(Reliability, ConvergesUnderReorder) {
  msg::FaultOptions f;
  f.send.reorder = 0.4;
  f.send.reorder_window = 2;
  converge_under(f, 2, 12);
}

TEST(Reliability, ConvergesUnderCombinedFaults) {
  msg::FaultOptions f;
  f.send.drop = 0.15;
  f.send.duplicate = 0.25;
  f.send.delay = 0.2;
  f.send.delay_ms = 1ms;
  f.send.reorder = 0.2;
  f.recv.drop = 0.15;
  f.recv.duplicate = 0.25;
  converge_under(f, 3, 10);
}

TEST(Reliability, ConvergesUnderCombinedFaultsWithCodecForced) {
  // The full fault gauntlet with every update payload compressed: drops,
  // duplicates, delays, and reorders must not interact with the codec —
  // compressed payloads retransmit, dedup, and apply exactly like raw ones.
  msg::FaultOptions f;
  f.send.drop = 0.15;
  f.send.duplicate = 0.25;
  f.send.delay = 0.2;
  f.send.delay_ms = 1ms;
  f.send.reorder = 0.2;
  f.recv.drop = 0.15;
  f.recv.duplicate = 0.25;
  converge_under(f, 3, 10, dsm::CodecMode::Forced);
}

TEST(Reliability, CorruptPayloadRejectedDetachedAndClusterProgresses) {
  // Remote 1's update payloads are bit-flipped on the wire.  With the codec
  // forced on, the compressed block's checksum turns the flip into a
  // deterministic whole-payload rejection: the home detaches the corrupting
  // peer (never applying the mangled bytes) and the rest of the cluster
  // keeps working.
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  msg::FaultOptions f;
  f.seed = 3;
  f.send.corrupt = 1.0;
  f.send.corrupt_bits = 1;
  f.send.only = {msg::MsgType::UnlockRequest};
  dsm::RetryPolicy retry;
  retry.timeout = hdsm::test::scaled(25ms);
  retry.backoff = 1.0;
  retry.max_retries = 3;
  dsm::RemoteOptions doomed_opts;
  doomed_opts.retry = retry;
  doomed_opts.dsd.codec = dsm::CodecMode::Forced;
  dsm::RemoteThread doomed(gthv(), plat::linux_ia32(), 1,
                           msg::make_faulty(home.attach(1), f), doomed_opts);
  dsm::RemoteThread healthy(gthv(), plat::linux_ia32(), 2, home.attach(2));
  home.start();

  doomed.lock(0);
  // A long smooth run, so the payload carries a compressed block and the
  // flip lands somewhere validation or the checksum must catch.
  auto da = doomed.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    da.set(i, static_cast<std::int64_t>(i) * 11 + 5);
  }
  EXPECT_THROW(doomed.unlock(0), dsm::HomeUnreachable);
  EXPECT_TRUE(doomed.detached());

  // None of the doomed remote's mangled updates reached the master image.
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(home.space().view<std::int64_t>("A").get(i), 0)
        << "element " << i;
  }

  // The home reclaimed the mutex on detach; the healthy remote progresses.
  healthy.lock(0);
  auto a = healthy.space().view<std::int64_t>("A");
  a.set(1, 222);
  healthy.unlock(0);
  healthy.join();
  home.lock(0);
  home.unlock(0);
  home.wait_all_joined();

  EXPECT_EQ(home.space().view<std::int64_t>("A").get(1), 222);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Reliability, DuplicatedRequestsApplyExactlyOnce) {
  // Force every request to be sent twice and verify via both the final
  // array (exactly-once application) and the home's duplicate counter
  // (the second copies really arrived and were dropped).
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  msg::FaultOptions f;
  f.send.duplicate = 1.0;
  dsm::RemoteOptions ropts;
  ropts.retry = fast_retry();
  dsm::RemoteThread remote(gthv(), plat::linux_ia32(), 1,
                           msg::make_faulty(home.attach(1), f), ropts);
  home.start();
  constexpr int kOps = 20;
  for (int i = 0; i < kOps; ++i) {
    remote.lock(0);
    auto a = remote.space().view<std::int64_t>("A");
    a.set(0, a.get(0) + 1);
    remote.unlock(0);
  }
  remote.join();
  home.wait_all_joined();
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(0), kOps);
  EXPECT_GT(home.stats().duplicates_dropped, 0u);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Reliability, RetriesAreCountedAndTraced) {
  dsm::TraceLog remote_log;
  dsm::HomeNode home(gthv(), plat::linux_ia32());
  msg::FaultOptions f;
  f.seed = 11;
  f.send.drop = 0.5;
  f.send.only = {msg::MsgType::LockRequest, msg::MsgType::UnlockRequest};
  dsm::RemoteOptions ropts;
  ropts.retry = fast_retry();
  ropts.trace = &remote_log;
  dsm::RemoteThread remote(gthv(), plat::linux_ia32(), 1,
                           msg::make_faulty(home.attach(1), f), ropts);
  home.start();
  for (int i = 0; i < 10; ++i) {
    remote.lock(0);
    remote.unlock(0);
  }
  remote.join();
  EXPECT_GT(remote.stats().retries, 0u);
  EXPECT_EQ(remote.stats().retries, remote.stats().timeouts);
  bool saw_retry_event = false;
  for (const dsm::TraceEvent& e : remote_log.snapshot()) {
    if (e.kind == dsm::TraceEvent::Kind::RetrySent) saw_retry_event = true;
  }
  EXPECT_TRUE(saw_retry_event);
  const auto err = dsm::validate_trace(remote_log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Reliability, ExhaustedRetriesDetachCleanly) {
  // Black-hole every request: the remote must give up with HomeUnreachable
  // after exactly max_retries retransmissions, record the episode in its
  // trace, and end up detached with tracking stopped.
  dsm::TraceLog remote_log;
  dsm::HomeNode home(gthv(), plat::linux_ia32());
  msg::FaultOptions f;
  f.send.drop = 1.0;
  f.send.only = {msg::MsgType::LockRequest};
  dsm::RetryPolicy retry;
  retry.timeout = 5ms;
  retry.backoff = 1.0;
  retry.max_retries = 3;
  dsm::RemoteOptions ropts;
  ropts.retry = retry;
  ropts.trace = &remote_log;
  dsm::RemoteThread remote(gthv(), plat::linux_ia32(), 1,
                           msg::make_faulty(home.attach(1), f), ropts);
  home.start();
  EXPECT_THROW(remote.lock(0), dsm::HomeUnreachable);
  EXPECT_TRUE(remote.detached());
  EXPECT_EQ(remote.stats().retries, retry.max_retries);
  EXPECT_EQ(remote.stats().timeouts, retry.max_retries + 1u);
  bool saw_timeout_detach = false;
  for (const dsm::TraceEvent& e : remote_log.snapshot()) {
    if (e.kind == dsm::TraceEvent::Kind::TimeoutDetached) {
      saw_timeout_detach = true;
    }
  }
  EXPECT_TRUE(saw_timeout_detach);
  // Further synchronization fails fast rather than hanging.
  EXPECT_THROW(remote.lock(0), dsm::HomeUnreachable);
  home.stop();
}

TEST(Reliability, HomeReclaimsLocksOfDeadRemoteAndClusterProgresses) {
  // Remote 1 acquires the mutex, then every one of its UnlockRequests is
  // black-holed: it exhausts retries and detaches.  The home must reclaim
  // the mutex so the master and remote 2 keep working.
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  msg::FaultOptions f;
  f.send.drop = 1.0;
  f.send.only = {msg::MsgType::UnlockRequest};
  dsm::RetryPolicy retry;
  retry.timeout = 5ms;
  retry.backoff = 1.0;
  retry.max_retries = 3;
  dsm::RemoteOptions faulty_opts;
  faulty_opts.retry = retry;
  dsm::RemoteThread doomed(gthv(), plat::linux_ia32(), 1,
                           msg::make_faulty(home.attach(1), f), faulty_opts);
  dsm::RemoteThread healthy(gthv(), plat::linux_ia32(), 2, home.attach(2));
  home.start();

  doomed.lock(0);
  doomed.space().view<std::int64_t>("A").set(0, 111);
  EXPECT_THROW(doomed.unlock(0), dsm::HomeUnreachable);
  EXPECT_TRUE(doomed.detached());

  // The doomed remote's endpoint closed on detach; once the home's receiver
  // reaps it the mutex is reclaimed and others can take it.
  healthy.lock(0);
  auto a = healthy.space().view<std::int64_t>("A");
  a.set(1, 222);
  healthy.unlock(0);
  healthy.join();
  home.lock(0);
  home.unlock(0);
  home.wait_all_joined();

  EXPECT_EQ(home.space().view<std::int64_t>("A").get(1), 222);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

// ---- faults over real TCP --------------------------------------------------

TEST(Reliability, TcpConvergesUnderDropAndDuplication) {
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  msg::TcpListener listener(0);
  std::thread acceptor([&] { home.attach_endpoint(1, listener.accept()); });
  msg::FaultOptions f;
  f.send.drop = 0.25;
  f.send.duplicate = 0.5;
  f.recv.drop = 0.25;
  dsm::RemoteOptions ropts;
  ropts.retry = fast_retry();
  dsm::RemoteThread remote(
      gthv(), plat::linux_ia32(), 1,
      msg::make_faulty(msg::tcp_connect(listener.port()), f), ropts);
  acceptor.join();
  home.start();

  constexpr int kOps = 15;
  for (const auto& [idx, delta] : ops_of(1, kOps)) {
    remote.lock(0);
    auto a = remote.space().view<std::int64_t>("A");
    a.set(idx, a.get(idx) + delta);
    remote.unlock(0);
  }
  remote.join();
  home.wait_all_joined();

  const std::vector<std::int64_t> expected = expected_array(1, kOps);
  auto a = home.space().view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Reliability, TcpResetRecoversThroughReconnect) {
  // The transport dies mid-run (connection reset after a fixed number of
  // sends); the remote re-dials through its reconnect hook, resumes its
  // outstanding request, and the run converges with no lost or doubled
  // updates.
  dsm::TraceLog log;
  dsm::TraceLog remote_log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  msg::TcpListener listener(0);
  // The home keeps accepting: each new connection re-attaches rank 1
  // (dedup state survives, so a retransmitted in-flight request is safe).
  std::thread acceptor([&] {
    for (int conn = 0; conn < 2; ++conn) {
      home.attach_endpoint(1, listener.accept());
    }
  });

  msg::FaultOptions f;
  f.send.reset_after = 13;  // dies partway through the workload
  dsm::RemoteOptions ropts;
  ropts.retry = fast_retry();
  ropts.trace = &remote_log;
  ropts.reconnect = [&listener] {
    // Resume hint travels in the Hello; a plain (fault-free) endpoint is
    // fine for the second life.
    return msg::tcp_connect_retry(listener.port());
  };
  dsm::RemoteThread remote(
      gthv(), plat::linux_ia32(), 1,
      msg::make_faulty(msg::tcp_connect(listener.port()), f), ropts);
  home.start();

  constexpr int kOps = 20;
  for (int i = 0; i < kOps; ++i) {
    remote.lock(0);
    auto a = remote.space().view<std::int64_t>("A");
    a.set(0, a.get(0) + 1);
    remote.unlock(0);
  }
  remote.join();
  acceptor.join();
  home.wait_all_joined();

  EXPECT_EQ(remote.stats().reconnects, 1u);
  bool saw_reconnect_event = false;
  for (const dsm::TraceEvent& e : remote_log.snapshot()) {
    if (e.kind == dsm::TraceEvent::Kind::Reconnected) {
      saw_reconnect_event = true;
    }
  }
  EXPECT_TRUE(saw_reconnect_event);
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(0), kOps);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

// ---- targeted regressions for reliability edge cases -----------------------

TEST(FaultyEndpoint, HeldReorderMessageFlushedByTimeBound) {
  // A reorder-held message whose window never fills (no later sends) must
  // still be delivered: the time bound flushes it during the sender's next
  // recv wait, without relying on a retrying peer.
  auto [a, b] = msg::make_channel_pair();
  msg::FaultOptions opts;
  opts.send.reorder = 1.0;
  opts.send.reorder_window = 8;  // never fills in this test
  opts.send.reorder_hold_ms = 10ms;
  auto faulty = msg::make_faulty(std::move(a), opts);
  std::thread echo([&b] {
    try {
      for (;;) {
        msg::Message m = b->recv();
        b->send(m);
      }
    } catch (const msg::ChannelClosed&) {
    }
  });
  faulty->send(tagged(7));  // held back; no further sends will age it out
  msg::Message m;
  ASSERT_TRUE(faulty->recv_for(m, 2000ms));  // echo proves delivery
  EXPECT_EQ(m.sync_id, 7u);
  EXPECT_EQ(faulty->counters().reordered, 1u);
  faulty->close();
  echo.join();
}

TEST(Reliability, DuplicatedHelloDoesNotResetDedup) {
  // A duplicated (or reordered) copy of the initial Hello delivered after
  // request #1 must not reset the dedup horizon: it carries the same
  // incarnation epoch, so a later retransmit of an already-executed
  // request is still answered from the reply cache, not re-executed.
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  msg::EndpointPtr ep = home.attach(1);
  home.start();
  const std::string tag = home.space().image_tag_text();

  ep->send(raw(msg::MsgType::Hello, 0, /*epoch=*/42, tag));
  ep->send(raw(msg::MsgType::LockRequest, 1, 0));
  msg::Message reply = ep->recv();
  ASSERT_EQ(reply.type, msg::MsgType::LockGrant);
  ep->send(raw(msg::MsgType::UnlockRequest, 2, 0, "", no_blocks()));
  reply = ep->recv();
  ASSERT_EQ(reply.type, msg::MsgType::UnlockAck);

  // The late duplicate of the session-opening Hello...
  ep->send(raw(msg::MsgType::Hello, 0, 42, tag));
  // ...followed by a timeout retransmit of the already-executed unlock.
  ep->send(raw(msg::MsgType::UnlockRequest, 2, 0, "", no_blocks()));
  reply = ep->recv();
  EXPECT_EQ(reply.type, msg::MsgType::UnlockAck);  // cached, not re-run
  EXPECT_EQ(reply.seq, 2u);
  EXPECT_GE(home.stats().duplicates_dropped, 1u);

  // The dedup horizon is intact: genuinely fresh requests still work.
  ep->send(raw(msg::MsgType::LockRequest, 3, 0));
  reply = ep->recv();
  EXPECT_EQ(reply.type, msg::MsgType::LockGrant);
  ep->send(raw(msg::MsgType::UnlockRequest, 4, 0, "", no_blocks()));
  reply = ep->recv();
  EXPECT_EQ(reply.type, msg::MsgType::UnlockAck);

  EXPECT_EQ(home.active_ranks(), std::vector<std::uint32_t>{1});
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  ep->close();
  home.stop();
}

TEST(Reliability, StaleUnlockAfterMutexMovedOnIsDropped) {
  // Remote 1's UnlockRequest dies with its connection; while it is away
  // reconnecting, the home reclaims the mutex and remote 2 acquires,
  // writes, and releases it.  Remote 1's late retransmit must NOT
  // overwrite remote 2's write: the lock generation moved on, so the home
  // drops the stale diffs and detaches remote 1.
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  std::promise<void> gate;
  std::shared_future<void> gate_f = gate.get_future().share();
  msg::FaultOptions f;
  f.send.reset_after = 2;  // sends: Hello, LockRequest, then reset
  dsm::RemoteOptions r1opts;
  r1opts.retry = fast_retry();
  r1opts.max_reconnects = 1;
  r1opts.reconnect = [&gate_f, &home] {
    gate_f.wait();  // hold the reconnect until remote 2 is done
    return home.attach(1);
  };
  dsm::RemoteThread r1(gthv(), plat::linux_ia32(), 1,
                       msg::make_faulty(home.attach(1), f), r1opts);
  dsm::RemoteThread r2(gthv(), plat::linux_ia32(), 2, home.attach(2));
  home.start();

  r1.lock(0);
  r1.space().view<std::int64_t>("A").set(0, 111);
  std::thread t1([&r1] { EXPECT_THROW(r1.unlock(0), dsm::HomeUnreachable); });

  r2.lock(0);  // granted once the home reaps remote 1's dead connection
  r2.space().view<std::int64_t>("A").set(0, 222);
  r2.unlock(0);
  gate.set_value();  // now let remote 1 retransmit its stale unlock
  t1.join();

  EXPECT_TRUE(r1.detached());
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(0), 222);
  r2.join();
  home.wait_all_joined();
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Reliability, DeadWaiterGrantDoesNotUnwindIntoMaster) {
  // The master's unlock() hands the mutex to a queued remote whose
  // connection is dead.  The failed cross-peer send must detach that
  // remote, not throw out of the master's call (or detach whichever
  // healthy rank's receiver was executing the release).
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  auto [home_side, remote_side] = msg::make_channel_pair();
  msg::FaultOptions f;
  f.send.reset_after = 2;  // home sends: grant, ack, then reset
  home.attach_endpoint(1, msg::make_faulty(std::move(home_side), f));
  home.start();
  const std::string tag = home.space().image_tag_text();

  remote_side->send(raw(msg::MsgType::Hello, 0, /*epoch=*/7, tag));
  remote_side->send(raw(msg::MsgType::LockRequest, 1, 0));
  msg::Message reply = remote_side->recv();
  ASSERT_EQ(reply.type, msg::MsgType::LockGrant);
  remote_side->send(raw(msg::MsgType::UnlockRequest, 2, 0, "", no_blocks()));
  reply = remote_side->recv();
  ASSERT_EQ(reply.type, msg::MsgType::UnlockAck);

  home.lock(0);
  remote_side->send(raw(msg::MsgType::LockRequest, 3, 0));
  ASSERT_TRUE(wait_for_trace(log, [](const std::vector<dsm::TraceEvent>& ev) {
    int requested = 0;
    for (const dsm::TraceEvent& e : ev) {
      if (e.kind == dsm::TraceEvent::Kind::LockRequested && e.rank == 1) {
        ++requested;
      }
    }
    return requested >= 2;  // the queued request reached the home
  }));
  EXPECT_NO_THROW(home.unlock(0));  // grant to rank 1 dies: contained
  EXPECT_TRUE(home.active_ranks().empty());

  // The master (and the lock) remain fully usable.
  home.lock(0);
  home.unlock(0);
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}

TEST(Reliability, DeadBarrierPeerDoesNotUnwindIntoMaster) {
  // Completing a barrier episode sends releases to every entered remote;
  // a dead one must be detached, not unwind ChannelClosed into the thread
  // (here: the master's barrier()) that completed the episode.
  dsm::TraceLog log;
  dsm::HomeOptions hopts;
  hopts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), hopts);
  home.set_barrier_count(0, 2);
  auto [home_side, remote_side] = msg::make_channel_pair();
  msg::FaultOptions f;
  f.send.reset_after = 2;  // home sends: grant, ack, then reset
  home.attach_endpoint(1, msg::make_faulty(std::move(home_side), f));
  home.start();
  const std::string tag = home.space().image_tag_text();

  remote_side->send(raw(msg::MsgType::Hello, 0, /*epoch=*/9, tag));
  remote_side->send(raw(msg::MsgType::LockRequest, 1, 0));
  msg::Message reply = remote_side->recv();
  ASSERT_EQ(reply.type, msg::MsgType::LockGrant);
  remote_side->send(raw(msg::MsgType::UnlockRequest, 2, 0, "", no_blocks()));
  reply = remote_side->recv();
  ASSERT_EQ(reply.type, msg::MsgType::UnlockAck);

  remote_side->send(raw(msg::MsgType::BarrierEnter, 3, 0, "", no_blocks()));
  ASSERT_TRUE(wait_for_trace(log, [](const std::vector<dsm::TraceEvent>& ev) {
    for (const dsm::TraceEvent& e : ev) {
      if (e.kind == dsm::TraceEvent::Kind::BarrierEntered && e.rank == 1) {
        return true;
      }
    }
    return false;
  }));
  home.barrier(0);  // completes the episode; the release to rank 1 dies
  EXPECT_TRUE(home.active_ranks().empty());
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << *err;
  home.stop();
}
