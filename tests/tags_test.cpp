// Unit and property tests for TypeDesc, per-platform layout, and the
// CGT-RMR (m,n) tag grammar — including byte-exact reproduction of the
// paper's Figure 3 tag strings.
#include <gtest/gtest.h>

#include <random>

#include "tags/describe.hpp"
#include "tags/layout.hpp"
#include "tags/tag.hpp"
#include "tags/type_desc.hpp"
#include "test_util.hpp"

namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
using tags::TypeDesc;

// ---- TypeDesc --------------------------------------------------------------

TEST(TypeDesc, BuildersAndAccessors) {
  auto s = tags::t_int();
  EXPECT_EQ(s->kind(), TypeDesc::Kind::Scalar);
  EXPECT_EQ(s->scalar_kind(), plat::ScalarKind::Int);

  auto a = TypeDesc::array(tags::t_double(), 10);
  EXPECT_EQ(a->kind(), TypeDesc::Kind::Array);
  EXPECT_EQ(a->count(), 10u);
  EXPECT_EQ(a->leaf_count(), 10u);

  auto st = TypeDesc::struct_of(
      "S", {{"p", TypeDesc::pointer()}, {"a", a}, {"n", tags::t_int()}});
  EXPECT_EQ(st->kind(), TypeDesc::Kind::Struct);
  EXPECT_EQ(st->fields().size(), 3u);
  EXPECT_EQ(st->leaf_count(), 12u);
  EXPECT_EQ(st->to_string(), "struct S{void* p; double[10] a; int n}");
}

TEST(TypeDesc, PointerScalarKindNormalizes) {
  auto p = TypeDesc::scalar(plat::ScalarKind::Pointer);
  EXPECT_EQ(p->kind(), TypeDesc::Kind::Pointer);
}

TEST(TypeDesc, InvalidConstructionsThrow) {
  EXPECT_THROW(TypeDesc::array(nullptr, 3), std::invalid_argument);
  EXPECT_THROW(TypeDesc::array(tags::t_int(), 0), std::invalid_argument);
  EXPECT_THROW(TypeDesc::struct_of("S", {}), std::invalid_argument);
  EXPECT_THROW(TypeDesc::reserved(0), std::invalid_argument);
}

TEST(TypeDesc, SameShapeIgnoresNames) {
  auto a = TypeDesc::struct_of("A", {{"x", tags::t_int()}});
  auto b = TypeDesc::struct_of("B", {{"y", tags::t_int()}});
  auto c = TypeDesc::struct_of("C", {{"x", tags::t_long()}});
  EXPECT_TRUE(a->same_shape(*b));
  EXPECT_FALSE(a->same_shape(*c));
}

// ---- layout ----------------------------------------------------------------

TEST(Layout, ScalarSizesFollowPlatform) {
  EXPECT_EQ(tags::size_of(*tags::t_long(), plat::linux_ia32()), 4u);
  EXPECT_EQ(tags::size_of(*tags::t_long(), plat::linux_x86_64()), 8u);
  EXPECT_EQ(tags::size_of(*tags::t_longdouble(), plat::linux_ia32()), 12u);
  EXPECT_EQ(tags::size_of(*tags::t_longdouble(), plat::solaris_sparc32()),
            16u);
}

TEST(Layout, CharIntPaddingPerPlatform) {
  auto t = TypeDesc::struct_of("S", {{"c", tags::t_char()},
                                     {"i", tags::t_int()}});
  // Natural alignment: char at 0, 3 pad bytes, int at 4.
  EXPECT_EQ(tags::size_of(*t, plat::linux_ia32()), 8u);
  // The packed ABI aligns int to 2: char, 1 pad, int at 2 -> size 6.
  EXPECT_EQ(tags::size_of(*t, plat::exotic_packed_be()), 6u);
}

TEST(Layout, Ia32DoubleAlignmentQuirk) {
  auto t = TypeDesc::struct_of("S", {{"i", tags::t_int()},
                                     {"d", tags::t_double()}});
  // IA-32 aligns double to 4: no padding, size 12.
  EXPECT_EQ(tags::size_of(*t, plat::linux_ia32()), 12u);
  // SPARC aligns double to 8: 4 bytes padding, size 16.
  EXPECT_EQ(tags::size_of(*t, plat::solaris_sparc32()), 16u);
}

TEST(Layout, TrailingStructPadding) {
  auto t = TypeDesc::struct_of("S", {{"d", tags::t_double()},
                                     {"c", tags::t_char()}});
  EXPECT_EQ(tags::size_of(*t, plat::solaris_sparc32()), 16u);
  const tags::Layout l = tags::compute_layout(t, plat::solaris_sparc32());
  ASSERT_EQ(l.runs.size(), 3u);
  EXPECT_EQ(l.runs[2].cat, tags::FlatRun::Cat::Padding);
  EXPECT_EQ(l.runs[2].offset, 9u);
  EXPECT_EQ(l.runs[2].byte_length(), 7u);
}

TEST(Layout, FieldOffsetsRecorded) {
  auto t = TypeDesc::struct_of("S", {{"c", tags::t_char()},
                                     {"i", tags::t_int()},
                                     {"d", tags::t_double()}});
  const tags::Layout l = tags::compute_layout(t, plat::solaris_sparc32());
  ASSERT_EQ(l.field_offsets.size(), 3u);
  EXPECT_EQ(l.field_offsets[0], 0u);
  EXPECT_EQ(l.field_offsets[1], 4u);
  EXPECT_EQ(l.field_offsets[2], 8u);
}

TEST(Layout, ArrayOfStructsRepeatsElementRuns) {
  auto elem = TypeDesc::struct_of("E", {{"c", tags::t_char()},
                                        {"i", tags::t_int()}});
  auto arr = TypeDesc::array(elem, 3);
  const tags::Layout l = tags::compute_layout(arr, plat::linux_ia32());
  EXPECT_EQ(l.size, 24u);
  // Per element: char run, padding, int run -> 9 runs.
  EXPECT_EQ(l.runs.size(), 9u);
  EXPECT_EQ(l.runs[3].offset, 8u);  // second element's char
}

TEST(Layout, RunAtFindsContainingRun) {
  auto t = TypeDesc::struct_of("S", {{"a", TypeDesc::array(tags::t_int(), 4)},
                                     {"d", tags::t_double()}});
  const tags::Layout l = tags::compute_layout(t, plat::solaris_sparc32());
  EXPECT_EQ(l.runs[l.run_at(0)].kind, plat::ScalarKind::Int);
  EXPECT_EQ(l.runs[l.run_at(15)].kind, plat::ScalarKind::Int);
  EXPECT_EQ(l.runs[l.run_at(16)].kind, plat::ScalarKind::Double);
  EXPECT_THROW(l.run_at(l.size), std::out_of_range);
}

TEST(Layout, RunsAreGapFreeCoverProperty) {
  std::mt19937_64 rng(7);
  const plat::PlatformDesc* platforms[] = {
      &plat::linux_ia32(), &plat::solaris_sparc32(), &plat::linux_x86_64(),
      &plat::solaris_sparc64(), &plat::exotic_packed_be(),
      &plat::exotic_wide_le()};
  for (int iter = 0; iter < 200; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    for (const plat::PlatformDesc* p : platforms) {
      const tags::Layout l = tags::compute_layout(t, *p);
      std::uint64_t cursor = 0;
      for (const tags::FlatRun& run : l.runs) {
        EXPECT_EQ(run.offset, cursor) << t->to_string() << " on " << p->name;
        cursor = run.end();
      }
      EXPECT_EQ(cursor, l.size) << t->to_string() << " on " << p->name;
    }
  }
}

TEST(Layout, NonPaddingRunShapeIsPlatformInvariantProperty) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    const tags::Layout a = tags::compute_layout(t, plat::linux_ia32());
    const tags::Layout b = tags::compute_layout(t, plat::solaris_sparc64());
    std::vector<const tags::FlatRun*> ra, rb;
    for (const auto& r : a.runs) {
      if (r.cat != tags::FlatRun::Cat::Padding) ra.push_back(&r);
    }
    for (const auto& r : b.runs) {
      if (r.cat != tags::FlatRun::Cat::Padding) rb.push_back(&r);
    }
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i]->cat, rb[i]->cat);
      EXPECT_EQ(ra[i]->count, rb[i]->count);
    }
  }
}

// ---- tags ------------------------------------------------------------------

TEST(Tag, Figure3MThVString) {
  // The paper's MThV example: a pointer, two ints, and an 8-byte reserved
  // slot, on the Linux/IA-32 machine of the testbed.
  auto mthv = TypeDesc::struct_of("MThV",
                                  {{"stack_ptr", TypeDesc::pointer()},
                                   {"step", tags::t_int()},
                                   {"rank", tags::t_int()},
                                   {"reserved", TypeDesc::reserved(8)}});
  const tags::Tag tag = tags::make_tag(*mthv, plat::linux_ia32());
  EXPECT_EQ(tag.to_string(), "(4,-1)(0,0)(4,1)(0,0)(4,1)(0,0)(8,0)(0,0)");
}

TEST(Tag, Figure3MThPString) {
  auto mthp = TypeDesc::struct_of(
      "MThP", {{"p1", TypeDesc::pointer()}, {"p2", TypeDesc::pointer()}});
  const tags::Tag tag = tags::make_tag(*mthp, plat::linux_ia32());
  EXPECT_EQ(tag.to_string(), "(4,-1)(0,0)(4,-1)(0,0)");
}

TEST(Tag, SameStructDifferentPlatformDifferentTag) {
  auto t = TypeDesc::struct_of("S", {{"p", TypeDesc::pointer()},
                                     {"x", tags::t_long()}});
  const std::string ia32 = tags::make_tag(*t, plat::linux_ia32()).to_string();
  const std::string lp64 =
      tags::make_tag(*t, plat::linux_x86_64()).to_string();
  EXPECT_EQ(ia32, "(4,-1)(0,0)(4,1)(0,0)");
  EXPECT_EQ(lp64, "(8,-1)(0,0)(8,1)(0,0)");
  EXPECT_NE(ia32, lp64);  // tag comparison detects heterogeneity
}

TEST(Tag, HomogeneousPlatformsProduceEqualTagsProperty) {
  std::mt19937_64 rng(99);
  plat::PlatformDesc renamed = plat::solaris_sparc32();
  renamed.name = "other-sparc";
  for (int iter = 0; iter < 100; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    EXPECT_EQ(tags::make_tag(*t, plat::solaris_sparc32()).to_string(),
              tags::make_tag(*t, renamed).to_string());
  }
}

TEST(Tag, PaddingBecomesExplicitTuple) {
  auto t = TypeDesc::struct_of("S", {{"c", tags::t_char()},
                                     {"i", tags::t_int()}});
  EXPECT_EQ(tags::make_tag(*t, plat::linux_ia32()).to_string(),
            "(1,1)(3,0)(4,1)(0,0)");
  EXPECT_EQ(tags::make_tag(*t, plat::exotic_packed_be()).to_string(),
            "(1,1)(1,0)(4,1)(0,0)");
}

TEST(Tag, ArraysCollapseToOneTuple) {
  auto t = TypeDesc::struct_of(
      "S", {{"a", TypeDesc::array(tags::t_int(), 56169)}});
  EXPECT_EQ(tags::make_tag(*t, plat::linux_ia32()).to_string(),
            "(4,56169)(0,0)");
}

TEST(Tag, NestedAggregateSyntax) {
  auto inner = TypeDesc::struct_of("I", {{"c", tags::t_char()},
                                         {"s", tags::t_short()}});
  auto t = TypeDesc::struct_of("S", {{"arr", TypeDesc::array(inner, 3)},
                                     {"n", tags::t_int()}});
  // Inner: char, 1 pad, short, no trailing pad (size 4, align 2).
  EXPECT_EQ(tags::make_tag(*t, plat::linux_ia32()).to_string(),
            "((1,1)(1,0)(2,1)(0,0),3)(0,0)(4,1)(0,0)");
}

TEST(Tag, DescribedBytesEqualsLayoutSizeProperty) {
  std::mt19937_64 rng(31337);
  const plat::PlatformDesc* platforms[] = {
      &plat::linux_ia32(), &plat::solaris_sparc32(), &plat::linux_x86_64(),
      &plat::exotic_packed_be()};
  for (int iter = 0; iter < 300; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    for (const plat::PlatformDesc* p : platforms) {
      EXPECT_EQ(tags::make_tag(*t, *p).described_bytes(),
                tags::size_of(*t, *p))
          << t->to_string() << " on " << p->name;
    }
  }
}

TEST(Tag, ParseRoundTripProperty) {
  std::mt19937_64 rng(555);
  for (int iter = 0; iter < 300; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    const tags::Tag tag = tags::make_tag(*t, plat::solaris_sparc64());
    const std::string text = tag.to_string();
    const tags::Tag back = tags::Tag::parse(text);
    EXPECT_EQ(back, tag);
    EXPECT_EQ(back.to_string(), text);
  }
}

TEST(Tag, BinaryRoundTripProperty) {
  std::mt19937_64 rng(777);
  for (int iter = 0; iter < 300; ++iter) {
    const tags::TypePtr t = hdsm::test::random_type(rng);
    const tags::Tag tag = tags::make_tag(*t, plat::linux_ia32());
    const std::vector<std::byte> bin = tag.to_binary();
    EXPECT_EQ(tags::Tag::from_binary(bin.data(), bin.size()), tag);
  }
}

TEST(Tag, ParseRejectsMalformedInput) {
  EXPECT_THROW(tags::Tag::parse("(4,1"), std::invalid_argument);
  EXPECT_THROW(tags::Tag::parse("(4;1)"), std::invalid_argument);
  EXPECT_THROW(tags::Tag::parse("(x,1)"), std::invalid_argument);
  EXPECT_THROW(tags::Tag::parse("(4,1)junk"), std::invalid_argument);
  EXPECT_THROW(tags::Tag::parse("(4,-0)"), std::invalid_argument);
  EXPECT_THROW(tags::Tag::parse("((4,1)"), std::invalid_argument);
  EXPECT_NO_THROW(tags::Tag::parse(""));
  EXPECT_NO_THROW(tags::Tag::parse("(0,0)"));
}

TEST(Tag, FromBinaryRejectsGarbage) {
  const std::byte junk[3] = {std::byte{9}, std::byte{9}, std::byte{9}};
  EXPECT_THROW(tags::Tag::from_binary(junk, 3), std::invalid_argument);
}

TEST(Tag, RunTags) {
  EXPECT_EQ(tags::make_run_tag(4, 120, false).to_string(), "(4,120)");
  EXPECT_EQ(tags::make_run_tag(8, 3, true).to_string(), "(8,-3)");
}

TEST(Tag, ConcatJoinsItems) {
  const tags::Tag t = tags::concat(
      {tags::make_run_tag(4, 2, false), tags::make_run_tag(8, 1, true)});
  EXPECT_EQ(t.to_string(), "(4,2)(8,-1)");
  EXPECT_EQ(t.described_bytes(), 16u);
}

TEST(Tag, PointerRunsCountNegatedButStoredPositive) {
  const tags::Tag t = tags::Tag::parse("(4,-7)");
  ASSERT_EQ(t.items().size(), 1u);
  EXPECT_EQ(t.items()[0].kind, tags::TagItem::Kind::Pointer);
  EXPECT_EQ(t.items()[0].count, 7u);
}

// ---- describe builder --------------------------------------------------------

TEST(Describe, ScalarKindsDeducted) {
  EXPECT_EQ(tags::scalar_kind_of<int>(), plat::ScalarKind::Int);
  EXPECT_EQ(tags::scalar_kind_of<unsigned long>(), plat::ScalarKind::ULong);
  EXPECT_EQ(tags::scalar_kind_of<long long>(), plat::ScalarKind::LongLong);
  EXPECT_EQ(tags::scalar_kind_of<float>(), plat::ScalarKind::Float);
  EXPECT_EQ(tags::scalar_kind_of<long double>(),
            plat::ScalarKind::LongDouble);
  EXPECT_EQ(tags::scalar_kind_of<const char>(), plat::ScalarKind::Char);
  EXPECT_EQ(tags::scalar_kind_of<bool>(), plat::ScalarKind::Bool);
}

TEST(Describe, DescribePointerAndScalar) {
  EXPECT_EQ(tags::describe<void*>()->kind(), TypeDesc::Kind::Pointer);
  EXPECT_EQ(tags::describe<double>()->scalar_kind(),
            plat::ScalarKind::Double);
}

TEST(Describe, BuilderReproducesFigure4) {
  const std::uint64_t nn = 237 * 237;
  tags::TypePtr by_builder = tags::describe_struct("GThV_t")
                                 .pointer("GThP")
                                 .array<int>("A", nn)
                                 .array<int>("B", nn)
                                 .array<int>("C", nn)
                                 .field<int>("n")
                                 .build();
  tags::TypePtr by_hand = TypeDesc::struct_of(
      "GThV_t", {{"GThP", TypeDesc::pointer()},
                 {"A", TypeDesc::array(tags::t_int(), nn)},
                 {"B", TypeDesc::array(tags::t_int(), nn)},
                 {"C", TypeDesc::array(tags::t_int(), nn)},
                 {"n", tags::t_int()}});
  EXPECT_TRUE(by_builder->same_shape(*by_hand));
  EXPECT_EQ(tags::make_tag(*by_builder, plat::linux_ia32()).to_string(),
            tags::make_tag(*by_hand, plat::linux_ia32()).to_string());
}

TEST(Describe, BuilderSupportsReservedAndNested) {
  tags::TypePtr inner = tags::describe_struct("inner")
                            .field<char>("c")
                            .field<short>("s")
                            .build();
  tags::TypePtr outer = tags::describe_struct("outer")
                            .nested("pair", TypeDesc::array(inner, 2))
                            .reserved(8)
                            .field<long double>("ld")
                            .build();
  EXPECT_EQ(outer->fields().size(), 3u);
  EXPECT_EQ(tags::make_tag(*outer, plat::linux_ia32()).to_string(),
            "((1,1)(1,0)(2,1)(0,0),2)(0,0)(8,0)(0,0)(12,1)(0,0)");
}

TEST(Tag, GThVTableExampleTag) {
  // The Figure 4 structure on Linux/IA-32 (the Table 1 machine).
  const std::uint64_t nn = 237 * 237;
  auto gthv = TypeDesc::struct_of(
      "GThV_t", {{"GThP", TypeDesc::pointer()},
                 {"A", TypeDesc::array(tags::t_int(), nn)},
                 {"B", TypeDesc::array(tags::t_int(), nn)},
                 {"C", TypeDesc::array(tags::t_int(), nn)},
                 {"n", tags::t_int()}});
  EXPECT_EQ(tags::make_tag(*gthv, plat::linux_ia32()).to_string(),
            "(4,-1)(0,0)(4,56169)(0,0)(4,56169)(0,0)(4,56169)(0,0)(4,1)(0,0)");
}
