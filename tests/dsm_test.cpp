// Tests for the DSD core: typed views over virtual-platform images, update
// block codec, the sync engine (diff -> index -> tag -> pack / unpack ->
// convert -> apply), and the full home/remote lock-unlock-barrier-join
// protocol in homogeneous and heterogeneous configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dsm/cluster.hpp"
#include "dsm/global_space.hpp"
#include "dsm/home.hpp"
#include "dsm/mth.hpp"
#include "dsm/rehome.hpp"
#include "dsm/remote.hpp"
#include "dsm/sync_engine.hpp"
#include "dsm/update.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
using tags::TypeDesc;

namespace {

tags::TypePtr small_gthv(std::uint64_t n = 64) {
  return TypeDesc::struct_of("G", {{"GThP", TypeDesc::pointer()},
                                   {"A", TypeDesc::array(tags::t_int(), n)},
                                   {"D", TypeDesc::array(tags::t_double(), 8)},
                                   {"n", tags::t_int()}});
}

}  // namespace

// ---- GlobalSpace and views ---------------------------------------------------

TEST(GlobalSpace, ImageTagMatchesPlatform) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  EXPECT_EQ(g.image_tag_text(),
            "(4,-1)(0,0)(4,64)(0,0)(8,8)(0,0)(4,1)(0,0)");
  dsm::GlobalSpace s(small_gthv(), plat::solaris_sparc64());
  EXPECT_EQ(s.image_tag_text(),
            "(8,-1)(0,0)(4,64)(0,0)(8,8)(0,0)(4,1)(4,0)");
}

TEST(GlobalSpace, ViewsRoundTripOnNativePlatform) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  auto a = g.view<std::int32_t>("A");
  a.set(0, 42);
  a.set(63, -7);
  EXPECT_EQ(a.get(0), 42);
  EXPECT_EQ(a.get(63), -7);
  auto d = g.view<double>("D");
  d.set(3, 2.5);
  EXPECT_EQ(d.get(3), 2.5);
  auto n = g.view<std::int32_t>("n");
  n.set(64);
  EXPECT_EQ(n.get(), 64);
}

TEST(GlobalSpace, ViewsStoreForeignRepresentation) {
  dsm::GlobalSpace g(small_gthv(), plat::solaris_sparc32());
  auto a = g.view<std::int32_t>("A");
  a.set(0, 0x01020304);
  // The region holds big-endian bytes.
  const std::byte* base =
      g.region().data() + g.table().rows()[g.table().row_of_field("A")].offset;
  EXPECT_EQ(std::to_integer<int>(base[0]), 1);
  EXPECT_EQ(std::to_integer<int>(base[3]), 4);
  EXPECT_EQ(a.get(0), 0x01020304);
  auto d = g.view<double>("D");
  d.set(0, -0.5);
  EXPECT_EQ(d.get(0), -0.5);
}

TEST(GlobalSpace, ViewBoundsChecked) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  auto a = g.view<std::int32_t>("A");
  EXPECT_EQ(a.size(), 64u);
  EXPECT_THROW(a.get(64), std::out_of_range);
  EXPECT_THROW(a.set(64, 1), std::out_of_range);
  EXPECT_THROW(g.view<std::int32_t>("nope"), std::out_of_range);
}

TEST(GlobalSpace, PointerFieldHoldsToken) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  auto p = g.view<std::uint64_t>("GThP");
  p.set(0xabcd);
  EXPECT_EQ(p.get(), 0xabcdu);
}

// ---- update blocks ------------------------------------------------------------

TEST(UpdateBlocks, CodecRoundTrip) {
  std::vector<dsm::UpdateBlock> blocks(2);
  blocks[0].row = 2;
  blocks[0].first_elem = 17;
  blocks[0].tag = "(4,100)";
  blocks[0].data.assign(400, std::byte{9});
  blocks[1].row = 8;
  blocks[1].first_elem = 0;
  blocks[1].tag = "(8,-1)";
  blocks[1].data.assign(8, std::byte{1});
  const std::vector<std::byte> payload = dsm::encode_update_blocks(blocks);
  const std::vector<dsm::UpdateBlock> back =
      dsm::decode_update_blocks(payload);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].row, 2u);
  EXPECT_EQ(back[0].first_elem, 17u);
  EXPECT_EQ(back[0].tag, "(4,100)");
  EXPECT_EQ(back[0].data, blocks[0].data);
  EXPECT_EQ(back[1].tag, "(8,-1)");
}

TEST(UpdateBlocks, EmptyPayload) {
  const auto payload = dsm::encode_update_blocks({});
  EXPECT_TRUE(dsm::decode_update_blocks(payload).empty());
}

TEST(UpdateBlocks, TruncationDetected) {
  std::vector<dsm::UpdateBlock> blocks(1);
  blocks[0].tag = "(4,1)";
  blocks[0].data.assign(4, std::byte{0});
  std::vector<std::byte> payload = dsm::encode_update_blocks(blocks);
  payload.pop_back();
  EXPECT_THROW(dsm::decode_update_blocks(payload), std::runtime_error);
  payload.push_back(std::byte{0});
  payload.push_back(std::byte{0});
  EXPECT_THROW(dsm::decode_update_blocks(payload), std::runtime_error);
}

// ---- sync engine ----------------------------------------------------------------

TEST(SyncEngine, CollectsExactlyTheWrites) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  dsm::ShareStats stats;
  dsm::SyncEngine engine(g, {}, stats);
  g.region().begin_tracking();
  auto a = g.view<std::int32_t>("A");
  a.set(3, 33);
  a.set(4, 44);
  a.set(10, 100);
  const auto runs = engine.collect_runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].first_elem, 3u);
  EXPECT_EQ(runs[0].count, 2u);
  EXPECT_EQ(runs[1].first_elem, 10u);
  EXPECT_EQ(runs[1].count, 1u);
  EXPECT_GT(stats.index_ns, 0u);
  g.region().end_tracking();
}

TEST(SyncEngine, PackThenApplyHeterogeneous) {
  // Sender: big-endian SPARC image; receiver: little-endian IA-32 image.
  dsm::GlobalSpace sender(small_gthv(), plat::solaris_sparc32());
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats ss, rs;
  dsm::SyncEngine se(sender, {}, ss), re(receiver, {}, rs);

  sender.region().begin_tracking();
  auto a = sender.view<std::int32_t>("A");
  for (int i = 5; i < 15; ++i) a.set(i, i * 1000 - 7);
  auto d = sender.view<double>("D");
  d.set(2, 6.25);
  const auto payload = se.collect_payload();
  sender.region().end_tracking();
  const auto blocks = dsm::decode_update_blocks(payload);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].tag, "(4,10)");

  re.apply_payload(payload,
                   msg::PlatformSummary::of(plat::solaris_sparc32()));
  auto ra = receiver.view<std::int32_t>("A");
  for (int i = 5; i < 15; ++i) EXPECT_EQ(ra.get(i), i * 1000 - 7);
  EXPECT_EQ(receiver.view<double>("D").get(2), 6.25);
  EXPECT_GT(rs.conv_ns, 0u);
  EXPECT_GT(rs.unpack_ns, 0u);
  EXPECT_EQ(rs.updates_received, 2u);
}

TEST(SyncEngine, BinaryTagsOption) {
  dsm::DsdOptions opts;
  opts.binary_tags = true;
  dsm::GlobalSpace sender(small_gthv(), plat::linux_ia32());
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats ss, rs;
  dsm::SyncEngine se(sender, opts, ss), re(receiver, opts, rs);
  sender.region().begin_tracking();
  sender.view<std::int32_t>("A").set(1, 11);
  const auto payload = se.collect_payload();
  sender.region().end_tracking();
  re.apply_payload(payload, msg::PlatformSummary::of(plat::linux_ia32()));
  EXPECT_EQ(receiver.view<std::int32_t>("A").get(1), 11);
}

TEST(SyncEngine, MalformedBlocksRejected) {
  dsm::GlobalSpace receiver(small_gthv(), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine re(receiver, {}, rs);
  const auto summary = msg::PlatformSummary::of(plat::linux_ia32());

  dsm::UpdateBlock b;
  b.row = 999;  // out of range
  b.tag = "(4,1)";
  b.data.assign(4, std::byte{0});
  EXPECT_THROW(re.apply_payload(dsm::encode_update_blocks({b}), summary),
               std::runtime_error);

  b.row = 1;  // padding row
  EXPECT_THROW(re.apply_payload(dsm::encode_update_blocks({b}), summary),
               std::runtime_error);

  b.row = 2;
  b.first_elem = 63;
  b.tag = "(4,2)";  // overruns the row
  b.data.assign(8, std::byte{0});
  EXPECT_THROW(re.apply_payload(dsm::encode_update_blocks({b}), summary),
               std::runtime_error);

  b.first_elem = 0;
  b.tag = "(4,2)";
  b.data.assign(4, std::byte{0});  // length disagrees with tag
  EXPECT_THROW(re.apply_payload(dsm::encode_update_blocks({b}), summary),
               std::runtime_error);

  b.tag = "(4,-2)";  // pointer tag for an int row
  b.data.assign(8, std::byte{0});
  EXPECT_THROW(re.apply_payload(dsm::encode_update_blocks({b}), summary),
               std::runtime_error);
}

TEST(SyncEngine, MergeRuns) {
  std::vector<hdsm::idx::UpdateRun> into = {{2, 0, 5}, {4, 10, 5}};
  hdsm::dsm::merge_runs(into, {{2, 3, 4}, {4, 0, 2}, {6, 1, 1}});
  ASSERT_EQ(into.size(), 4u);
  EXPECT_EQ(into[0].row, 2u);
  EXPECT_EQ(into[0].first_elem, 0u);
  EXPECT_EQ(into[0].count, 7u);
  EXPECT_EQ(into[1].row, 4u);
  EXPECT_EQ(into[1].count, 2u);
  EXPECT_EQ(into[2].row, 4u);
  EXPECT_EQ(into[2].first_elem, 10u);
  EXPECT_EQ(into[3].row, 6u);
}

TEST(SyncEngine, FullImageRuns) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  const auto runs = dsm::SyncEngine::full_image_runs(g.table());
  ASSERT_EQ(runs.size(), 4u);  // GThP, A, D, n
  EXPECT_EQ(runs[1].count, 64u);
}

// ---- home/remote protocol --------------------------------------------------------

class DsdProtocol : public ::testing::TestWithParam<const plat::PlatformDesc*> {
};

TEST_P(DsdProtocol, LockTransfersUpdatesBothWays) {
  const plat::PlatformDesc& remote_platform = *GetParam();
  dsm::HomeNode home(small_gthv(), plat::solaris_sparc32());
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), remote_platform, 1, std::move(ep));
  home.start();

  // Master writes under the lock.
  home.lock(0);
  home.space().view<std::int32_t>("A").set(7, 777);
  home.space().view<double>("D").set(1, -1.25);
  home.unlock(0);

  // Remote acquires: sees the master's writes (plus initial image).
  remote.lock(0);
  EXPECT_EQ(remote.space().view<std::int32_t>("A").get(7), 777);
  EXPECT_EQ(remote.space().view<double>("D").get(1), -1.25);
  remote.space().view<std::int32_t>("A").set(9, 999);
  remote.unlock(0);

  // Master reacquires: the remote's write is in the master image.
  home.lock(0);
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(9), 999);
  home.unlock(0);

  remote.join();
  home.wait_all_joined();
  EXPECT_GT(remote.stats().locks, 0u);
  home.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, DsdProtocol,
    ::testing::Values(&plat::solaris_sparc32(),  // homogeneous
                      &plat::linux_ia32(),       // endianness differs
                      &plat::linux_x86_64()));   // endianness + widths differ

TEST(DsdProtocolMisc, MutualExclusionAcrossThreads) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  msg::EndpointPtr e1 = home.attach(1);
  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r1(small_gthv(), plat::linux_ia32(), 1, std::move(e1));
  dsm::RemoteThread r2(small_gthv(), plat::solaris_sparc32(), 2,
                       std::move(e2));
  home.start();

  constexpr int kIters = 50;
  const auto worker = [kIters](dsm::RemoteThread& r) {
    for (int i = 0; i < kIters; ++i) {
      r.lock(0);
      auto n = r.space().view<std::int32_t>("n");
      n.set(n.get() + 1);
      r.unlock(0);
    }
    r.join();
  };
  std::thread t1([&] { worker(r1); });
  std::thread t2([&] { worker(r2); });
  for (int i = 0; i < kIters; ++i) {
    home.lock(0);
    auto n = home.space().view<std::int32_t>("n");
    n.set(n.get() + 1);
    home.unlock(0);
  }
  t1.join();
  t2.join();
  home.wait_all_joined();
  home.lock(0);
  EXPECT_EQ(home.space().view<std::int32_t>("n").get(), 3 * kIters);
  home.unlock(0);
  home.stop();
}

TEST(DsdProtocolMisc, BarrierPropagatesAllUpdates) {
  dsm::HomeNode home(small_gthv(), plat::solaris_sparc32());
  msg::EndpointPtr e1 = home.attach(1);
  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r1(small_gthv(), plat::linux_ia32(), 1, std::move(e1));
  dsm::RemoteThread r2(small_gthv(), plat::linux_ia32(), 2, std::move(e2));
  home.start();

  std::thread t1([&] {
    r1.space().view<std::int32_t>("A").set(1, 100);
    r1.barrier(0);
    EXPECT_EQ(r1.space().view<std::int32_t>("A").get(0), 10);
    EXPECT_EQ(r1.space().view<std::int32_t>("A").get(2), 200);
    r1.join();
  });
  std::thread t2([&] {
    r2.space().view<std::int32_t>("A").set(2, 200);
    r2.barrier(0);
    EXPECT_EQ(r2.space().view<std::int32_t>("A").get(0), 10);
    EXPECT_EQ(r2.space().view<std::int32_t>("A").get(1), 100);
    r2.join();
  });
  home.space().view<std::int32_t>("A").set(0, 10);
  home.barrier(0);
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(1), 100);
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(2), 200);
  t1.join();
  t2.join();
  home.wait_all_joined();
  home.stop();
}

TEST(DsdProtocolMisc, JoinShipsFinalWrites) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::solaris_sparc32(), 1,
                           std::move(ep));
  home.start();
  std::thread t([&] {
    remote.lock(0);
    remote.space().view<std::int32_t>("A").set(5, 55);
    remote.unlock(0);
    remote.space().view<std::int32_t>("A").set(6, 66);  // outside any lock
    remote.join();  // join ships it anyway
  });
  t.join();
  home.wait_all_joined();
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(5), 55);
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(6), 66);
  home.stop();
}

TEST(DsdProtocolMisc, LateAttachPullsFullImage) {
  // The adaptive scenario: a node joins after computation started.
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  home.start();
  home.lock(0);
  home.space().view<std::int32_t>("A").set(0, 123);
  home.space().view<std::int32_t>("n").set(64);
  home.unlock(0);

  msg::EndpointPtr ep = home.attach(5);
  dsm::RemoteThread late(small_gthv(), plat::solaris_sparc64(), 5,
                         std::move(ep));
  late.lock(0);
  EXPECT_EQ(late.space().view<std::int32_t>("A").get(0), 123);
  EXPECT_EQ(late.space().view<std::int32_t>("n").get(), 64);
  late.unlock(0);
  late.join();
  home.wait_all_joined();
  home.stop();
}

TEST(DsdProtocolMisc, StatsAccumulatePerEq1Buckets) {
  dsm::HomeNode home(small_gthv(), plat::solaris_sparc32());
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep));
  home.start();
  remote.lock(0);
  for (int i = 0; i < 64; ++i) {
    remote.space().view<std::int32_t>("A").set(i, i);
  }
  remote.unlock(0);
  remote.join();
  home.wait_all_joined();

  const dsm::ShareStats rs = remote.stats();
  EXPECT_GT(rs.index_ns, 0u);
  EXPECT_GT(rs.tag_ns, 0u);
  EXPECT_GT(rs.pack_ns, 0u);
  EXPECT_GT(rs.unpack_ns, 0u);  // from the grant
  EXPECT_GT(rs.conv_ns, 0u);
  EXPECT_EQ(rs.share_ns(), rs.index_ns + rs.tag_ns + rs.pack_ns +
                               rs.unpack_ns + rs.conv_ns);
  const dsm::ShareStats hs = home.stats();
  EXPECT_GT(hs.tag_ns, 0u);     // grant packing
  EXPECT_GT(hs.conv_ns, 0u);    // applying the remote's updates
  EXPECT_GT(hs.updates_received, 0u);
  home.stop();
}

TEST(DsdProtocolMisc, ClusterRunsAndAggregatesStats) {
  dsm::Cluster cluster(small_gthv(), plat::solaris_sparc32(),
                       {&plat::linux_ia32(), &plat::linux_ia32()});
  cluster.run(
      [](dsm::HomeNode& home) {
        home.lock(0);
        home.space().view<std::int32_t>("A").set(0, 1);
        home.unlock(0);
        home.barrier(0);
        home.wait_all_joined();
      },
      [](dsm::RemoteThread& remote) {
        remote.barrier(0);
        EXPECT_EQ(remote.space().view<std::int32_t>("A").get(0), 1);
        remote.join();
      });
  const dsm::ShareStats total = cluster.total_stats();
  EXPECT_GT(total.updates_sent, 0u);
  EXPECT_EQ(cluster.remote_count(), 2u);
}

// ---- views: bulk accessors ---------------------------------------------------

TEST(GlobalSpace, BulkRangeAccessNativeAndForeign) {
  for (const plat::PlatformDesc* p :
       {&plat::linux_ia32(), &plat::solaris_sparc32()}) {
    dsm::GlobalSpace g(small_gthv(), *p);
    auto a = g.view<std::int32_t>("A");
    std::vector<std::int32_t> in(64);
    for (int i = 0; i < 64; ++i) in[i] = i * i - 7;
    a.assign(in);
    EXPECT_EQ(a.to_vector(), in) << p->name;

    std::int32_t window[8];
    a.get_range(10, 8, window);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(window[i], in[10 + i]);

    const std::int32_t patch[3] = {-1, -2, -3};
    a.set_range(20, 3, patch);
    EXPECT_EQ(a.get(20), -1);
    EXPECT_EQ(a.get(22), -3);
    EXPECT_EQ(a.get(23), in[23]);
  }
}

TEST(GlobalSpace, BulkRangeBoundsChecked) {
  dsm::GlobalSpace g(small_gthv(), plat::linux_ia32());
  auto a = g.view<std::int32_t>("A");
  std::int32_t buf[4];
  EXPECT_THROW(a.get_range(62, 4, buf), std::out_of_range);
  EXPECT_THROW(a.set_range(64, 1, buf), std::out_of_range);
  EXPECT_THROW(a.assign(std::vector<std::int32_t>(3)),
               std::invalid_argument);
}

// ---- the paper-literal MTh_* facade --------------------------------------------

TEST(MthApi, PaperSignaturesDriveTheProtocol) {
  dsm::MthRegistry::reset();
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  dsm::RemoteThread remote(small_gthv(), plat::solaris_sparc32(), 1,
                           home.attach(1));
  home.start();
  dsm::MthRegistry::register_master(home);
  dsm::MthRegistry::register_remote(remote);
  ASSERT_TRUE(dsm::MthRegistry::registered(0));
  ASSERT_TRUE(dsm::MthRegistry::registered(1));

  std::thread worker([&] {
    dsm::MTh_lock(0, 1);
    remote.space().view<std::int32_t>("A").set(2, 22);
    dsm::MTh_unlock(0, 1);
    dsm::MTh_barrier(0, 1);
    dsm::MTh_join(1);
  });
  dsm::MTh_lock(0, 0);
  home.space().view<std::int32_t>("A").set(1, 11);
  dsm::MTh_unlock(0, 0);
  dsm::MTh_barrier(0, 0);
  dsm::MTh_join(0);  // master side: waits for all remotes
  worker.join();

  EXPECT_EQ(home.space().view<std::int32_t>("A").get(1), 11);
  EXPECT_EQ(home.space().view<std::int32_t>("A").get(2), 22);
  EXPECT_FALSE(dsm::MthRegistry::registered(1));
  dsm::MthRegistry::reset();
  home.stop();
}

TEST(MthApi, UnknownRankRejected) {
  dsm::MthRegistry::reset();
  EXPECT_THROW(dsm::MTh_lock(0, 42), std::out_of_range);
}

// ---- entry consistency (lock-data binding) --------------------------------------

TEST(EntryConsistency, BoundLockShipsOnlyItsFields) {
  // A: guarded by mutex 1; D: guarded by mutex 2.  Acquiring mutex 1 must
  // deliver pending A updates but leave D updates pending until mutex 2
  // (or a barrier) is acquired.
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  home.bind_lock(1, "A");
  home.bind_lock(2, "D");
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::solaris_sparc32(), 1,
                           std::move(ep));
  home.start();

  home.lock(0);
  home.space().view<std::int32_t>("A").set(0, 111);
  home.space().view<double>("D").set(0, 2.5);
  home.unlock(0);

  remote.lock(1);  // bound to A
  EXPECT_EQ(remote.space().view<std::int32_t>("A").get(0), 111);
  EXPECT_EQ(remote.space().view<double>("D").get(0), 0.0);  // still pending
  remote.unlock(1);

  remote.lock(2);  // bound to D — now it arrives
  EXPECT_EQ(remote.space().view<double>("D").get(0), 2.5);
  remote.unlock(2);
  remote.join();
  home.wait_all_joined();
  home.stop();
}

TEST(EntryConsistency, BarrierStillShipsEverything) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  home.bind_lock(1, "A");
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep));
  home.start();
  home.lock(0);
  home.space().view<std::int32_t>("A").set(1, 7);
  home.space().view<double>("D").set(1, 7.5);
  home.unlock(0);

  std::thread t([&] {
    remote.barrier(0);  // release consistency path: full pending set
    EXPECT_EQ(remote.space().view<std::int32_t>("A").get(1), 7);
    EXPECT_EQ(remote.space().view<double>("D").get(1), 7.5);
    remote.join();
  });
  home.barrier(0);
  t.join();
  home.wait_all_joined();
  home.stop();
}

TEST(EntryConsistency, FineGrainedLockingStaysCorrect) {
  // Two remotes each hammer their own guarded array under their own
  // mutex; a final barrier syncs the world.
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  home.bind_lock(1, "A");
  home.bind_lock(2, "D");
  msg::EndpointPtr e1 = home.attach(1);
  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r1(small_gthv(), plat::solaris_sparc32(), 1,
                       std::move(e1));
  dsm::RemoteThread r2(small_gthv(), plat::linux_x86_64(), 2, std::move(e2));
  home.start();

  std::thread t1([&] {
    for (int i = 0; i < 20; ++i) {
      r1.lock(1);
      auto a = r1.space().view<std::int32_t>("A");
      a.set(i % 8, a.get(i % 8) + 1);
      r1.unlock(1);
    }
    r1.barrier(0);
    r1.join();
  });
  std::thread t2([&] {
    for (int i = 0; i < 20; ++i) {
      r2.lock(2);
      auto d = r2.space().view<double>("D");
      d.set(i % 4, d.get(i % 4) + 0.5);
      r2.unlock(2);
    }
    r2.barrier(0);
    r2.join();
  });
  home.barrier(0);
  t1.join();
  t2.join();
  home.wait_all_joined();

  auto a = home.space().view<std::int32_t>("A");
  std::int32_t a_total = 0;
  for (int i = 0; i < 8; ++i) a_total += a.get(i);
  EXPECT_EQ(a_total, 20);
  auto d = home.space().view<double>("D");
  double d_total = 0;
  for (int i = 0; i < 4; ++i) d_total += d.get(i);
  EXPECT_EQ(d_total, 10.0);
  home.stop();
}

TEST(EntryConsistency, BadBindRejected) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  EXPECT_THROW(home.bind_lock(999, "A"), std::out_of_range);
  EXPECT_THROW(home.bind_lock(1, "nope"), std::out_of_range);
}

TEST(Rehome, MasterImageConvertsToNewPlatform) {
  dsm::HomeNode old_home(small_gthv(), plat::linux_ia32());
  old_home.start();
  old_home.lock(0);
  old_home.space().view<std::int32_t>("A").set(3, -12345);
  old_home.space().view<double>("D").set(5, 7.125);
  old_home.unlock(0);
  ASSERT_TRUE(old_home.quiesced());

  auto new_home = hdsm::dsm::rehome(old_home, plat::solaris_sparc64());
  EXPECT_EQ(new_home->space().platform().name, "solaris-sparc64");
  EXPECT_EQ(new_home->space().view<std::int32_t>("A").get(3), -12345);
  EXPECT_EQ(new_home->space().view<double>("D").get(5), 7.125);

  // The new home is fully operational: a remote attaches and syncs.
  msg::EndpointPtr ep = new_home->attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep));
  remote.lock(0);
  EXPECT_EQ(remote.space().view<std::int32_t>("A").get(3), -12345);
  remote.space().view<std::int32_t>("A").set(4, 44);
  remote.unlock(0);
  remote.join();
  new_home->wait_all_joined();
  EXPECT_EQ(new_home->space().view<std::int32_t>("A").get(4), 44);
  new_home->stop();
}

TEST(Rehome, RefusesWhileRemotesAttached) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep));
  home.start();
  EXPECT_FALSE(home.quiesced());
  EXPECT_THROW(hdsm::dsm::rehome(home, plat::solaris_sparc32()),
               std::logic_error);
  remote.join();
  home.wait_all_joined();
  EXPECT_TRUE(home.quiesced());
  home.stop();
}

TEST(Rehome, RefusesWhileMasterHoldsLock) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  home.start();
  home.lock(0);
  EXPECT_FALSE(home.quiesced());
  EXPECT_THROW(hdsm::dsm::rehome(home, plat::solaris_sparc32()),
               std::logic_error);
  home.unlock(0);
  EXPECT_TRUE(home.quiesced());
  home.stop();
}

TEST(DsdProtocolMisc, MidEpisodeJoinerNeitherBlocksNorReceivesRelease) {
  // r1 enters a barrier episode; r2 attaches while the episode is open;
  // the episode must complete with just {master, r1}, and r2 must not be
  // handed a BarrierRelease it never asked for.
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  msg::EndpointPtr e1 = home.attach(1);
  dsm::RemoteThread r1(small_gthv(), plat::solaris_sparc32(), 1,
                       std::move(e1));
  home.start();

  home.lock(0);
  home.space().view<std::int32_t>("A").set(0, 77);
  home.unlock(0);

  std::thread t1([&] {
    r1.barrier(0);  // enters first, blocks until the master enters
    r1.join();
  });
  // Give r1 time to enter the episode, then attach the latecomer.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r2(small_gthv(), plat::linux_x86_64(), 2, std::move(e2));

  home.barrier(0);  // completes without r2
  t1.join();

  // r2's first synchronization still works and pulls the full image.
  std::thread t2([&] {
    r2.lock(0);
    EXPECT_EQ(r2.space().view<std::int32_t>("A").get(0), 77);
    r2.unlock(0);
    r2.barrier(0);  // a fresh episode with {master, r2}
    r2.join();
  });
  home.barrier(0);
  t2.join();
  home.wait_all_joined();
  home.stop();
}

TEST(DsdProtocolMisc, ExplicitBarrierCountWaitsForLateAttacher) {
  // pthread_barrier_init semantics: with the count fixed at 3, the episode
  // must NOT close when only master + rank 1 entered, even though rank 2
  // has not attached yet when the episode opens.
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  home.set_barrier_count(0, 3);
  msg::EndpointPtr e1 = home.attach(1);
  dsm::RemoteThread r1(small_gthv(), plat::linux_ia32(), 1, std::move(e1));
  home.start();

  std::thread t1([&] {
    r1.barrier(0);
    r1.join();
  });
  std::atomic<bool> master_released{false};
  std::thread master([&] {
    home.barrier(0);
    master_released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(master_released.load());  // still waiting on the count

  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r2(small_gthv(), plat::solaris_sparc32(), 2,
                       std::move(e2));
  std::thread t2([&] {
    r2.barrier(0);
    r2.join();
  });
  master.join();
  EXPECT_TRUE(master_released.load());
  t1.join();
  t2.join();
  home.wait_all_joined();
  home.stop();
}

TEST(DsdProtocolMisc, BarrierCountValidation) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  EXPECT_THROW(home.set_barrier_count(999, 2), std::out_of_range);
}

TEST(DsdProtocolMisc, DisconnectWithoutJoinDetaches) {
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  {
    msg::EndpointPtr ep = home.attach(1);
    dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                             std::move(ep));
    home.start();
    remote.lock(0);
    remote.unlock(0);
    // Destructor closes the endpoint without join().
  }
  home.wait_all_joined();  // must not hang
  home.stop();
}
