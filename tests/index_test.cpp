// Tests for the index table (paper Table 1) and the diff-range -> element
// run mapping with coalescing.
#include <gtest/gtest.h>

#include <random>

#include "index/index_table.hpp"

namespace idx = hdsm::idx;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
using tags::TypeDesc;

namespace {

tags::TypePtr table1_gthv() {
  // Figure 4: struct GThV_t { void* GThP; int A,B,C[237*237]; int n; }
  const std::uint64_t nn = 237 * 237;
  return TypeDesc::struct_of("GThV_t",
                             {{"GThP", TypeDesc::pointer()},
                              {"A", TypeDesc::array(tags::t_int(), nn)},
                              {"B", TypeDesc::array(tags::t_int(), nn)},
                              {"C", TypeDesc::array(tags::t_int(), nn)},
                              {"n", tags::t_int()}});
}

}  // namespace

TEST(IndexTable, ReproducesTable1) {
  // Table 1 of the paper, built on the Linux/IA-32 machine at base address
  // 0x40058000.
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  const std::vector<idx::IndexRow>& rows = t.rows();
  ASSERT_EQ(rows.size(), 10u);

  const std::uint64_t base = 0x40058000;
  struct Expect {
    std::uint64_t addr;
    std::uint32_t size;
    std::int64_t number;
  };
  const Expect expected[10] = {
      {0x40058000, 4, -1},    {0x40058004, 0, 0}, {0x40058004, 4, 56169},
      {0x4008eda8, 0, 0},     {0x4008eda8, 4, 56169}, {0x400c5b4c, 0, 0},
      {0x400c5b4c, 4, 56169}, {0x400fc8f0, 0, 0}, {0x400fc8f0, 4, 1},
      {0x400fc8f4, 0, 0},
  };
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(base + rows[i].offset, expected[i].addr) << "row " << i;
    EXPECT_EQ(rows[i].size, expected[i].size) << "row " << i;
    EXPECT_EQ(rows[i].number, expected[i].number) << "row " << i;
  }
}

TEST(IndexTable, Table1StringRendering) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  const std::string s = t.to_table_string(0x40058000);
  EXPECT_NE(s.find("0x40058000  4  -1"), std::string::npos);
  EXPECT_NE(s.find("0x40058004  4  56169"), std::string::npos);
  EXPECT_NE(s.find("0x400fc8f4  0  0"), std::string::npos);
}

TEST(IndexTable, RowIndexesArePlatformInvariant) {
  // "while the data-type sizes may differ within the tables, the indexes
  //  of each element will remain the same."
  auto t = TypeDesc::struct_of("S", {{"p", TypeDesc::pointer()},
                                     {"l", tags::t_long()},
                                     {"a", TypeDesc::array(tags::t_int(), 7)}});
  const idx::IndexTable a(t, plat::linux_ia32());
  const idx::IndexTable b(t, plat::solaris_sparc64());
  ASSERT_EQ(a.rows().size(), b.rows().size());
  for (std::size_t i = 0; i < a.rows().size(); ++i) {
    EXPECT_EQ(a.rows()[i].number < 0, b.rows()[i].number < 0) << i;
    EXPECT_EQ(a.rows()[i].is_padding(), b.rows()[i].is_padding()) << i;
    if (!a.rows()[i].is_padding()) {
      EXPECT_EQ(a.rows()[i].element_count(), b.rows()[i].element_count());
    }
  }
  // Sizes differ: pointer/long are 4 on IA-32, 8 on SPARC64.
  EXPECT_EQ(a.rows()[0].size, 4u);
  EXPECT_EQ(b.rows()[0].size, 8u);
}

TEST(IndexTable, FieldNameLookup) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  EXPECT_EQ(t.row_of_field("GThP"), 0u);
  EXPECT_EQ(t.row_of_field("A"), 2u);
  EXPECT_EQ(t.row_of_field("B"), 4u);
  EXPECT_EQ(t.row_of_field("C"), 6u);
  EXPECT_EQ(t.row_of_field("n"), 8u);
  EXPECT_EQ(t.row_of_field(std::size_t{1}), 2u);
  EXPECT_THROW(t.row_of_field("nope"), std::out_of_range);
}

TEST(IndexTable, LocateMapsOffsetsToRowsAndElements) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  auto loc = t.locate(0);  // the pointer
  EXPECT_EQ(loc.row, 0u);
  EXPECT_EQ(loc.elem, 0u);
  loc = t.locate(4);  // A[0]
  EXPECT_EQ(loc.row, 2u);
  EXPECT_EQ(loc.elem, 0u);
  loc = t.locate(4 + 4 * 1000 + 2);  // inside A[1000]
  EXPECT_EQ(loc.row, 2u);
  EXPECT_EQ(loc.elem, 1000u);
  loc = t.locate(4 + 4 * 56169);  // B[0]
  EXPECT_EQ(loc.row, 4u);
  EXPECT_EQ(loc.elem, 0u);
  EXPECT_THROW(t.locate(t.image_size()), std::out_of_range);
}

TEST(IndexTable, PaddingRowsWithRealPadding) {
  auto t = TypeDesc::struct_of("S", {{"c", tags::t_char()},
                                     {"d", tags::t_double()}});
  const idx::IndexTable tab(t, plat::solaris_sparc32());
  ASSERT_EQ(tab.rows().size(), 4u);
  EXPECT_EQ(tab.rows()[1].size, 7u);  // 7 bytes padding after the char
  EXPECT_EQ(tab.rows()[1].number, 0);
  EXPECT_TRUE(tab.rows()[1].is_padding());
  // locate() inside padding returns the padding row.
  EXPECT_EQ(tab.locate(3).row, 1u);
}

// ---- diff-range -> run mapping ---------------------------------------------

TEST(MapRanges, PartialElementShipsWholeElement) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  // One byte inside A[5].
  const std::uint64_t off = 4 + 5 * 4 + 1;
  const std::vector<hdsm::mem::ByteRange> ranges = {{off, off + 1}};
  const auto runs = idx::map_ranges_to_runs(t, ranges);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].row, 2u);
  EXPECT_EQ(runs[0].first_elem, 5u);
  EXPECT_EQ(runs[0].count, 1u);
}

TEST(MapRanges, RangeSpanningElementsCoversAll) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  // From mid-A[2] to mid-A[6]: elements 2..6.
  const std::vector<hdsm::mem::ByteRange> ranges = {{4 + 2 * 4 + 3,
                                                     4 + 6 * 4 + 1}};
  const auto runs = idx::map_ranges_to_runs(t, ranges);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].first_elem, 2u);
  EXPECT_EQ(runs[0].count, 5u);
}

TEST(MapRanges, RangeCrossingRowsSplits) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  // Last 2 elements of A and first 3 of B.
  const std::uint64_t a_end = 4 + 56169 * 4;
  const std::vector<hdsm::mem::ByteRange> ranges = {{a_end - 8, a_end + 12}};
  const auto runs = idx::map_ranges_to_runs(t, ranges);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].row, 2u);
  EXPECT_EQ(runs[0].first_elem, 56167u);
  EXPECT_EQ(runs[0].count, 2u);
  EXPECT_EQ(runs[1].row, 4u);
  EXPECT_EQ(runs[1].first_elem, 0u);
  EXPECT_EQ(runs[1].count, 3u);
}

TEST(MapRanges, AdjacentRangesCoalesceIntoOneRun) {
  // "our system attempts to group consecutive array elements into a single
  //  tag ... distill many (hundreds, perhaps thousands) indexes into a
  //  single tag."
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  std::vector<hdsm::mem::ByteRange> ranges;
  for (int e = 0; e < 1000; ++e) {
    const std::uint64_t off = 4 + e * 4;
    ranges.push_back({off, off + 4});
  }
  const auto coalesced = idx::map_ranges_to_runs(t, ranges, true);
  ASSERT_EQ(coalesced.size(), 1u);
  EXPECT_EQ(coalesced[0].count, 1000u);
  const auto split = idx::map_ranges_to_runs(t, ranges, false);
  EXPECT_EQ(split.size(), 1000u);
}

TEST(MapRanges, OverlappingRangesDoNotDoubleCount) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  const std::vector<hdsm::mem::ByteRange> ranges = {{4, 20}, {12, 28}};
  const auto runs = idx::map_ranges_to_runs(t, ranges, true);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].first_elem, 0u);
  EXPECT_EQ(runs[0].count, 6u);
}

TEST(MapRanges, PaddingOnlyRangesVanish) {
  auto ty = TypeDesc::struct_of("S", {{"c", tags::t_char()},
                                      {"d", tags::t_double()}});
  const idx::IndexTable t(ty, plat::solaris_sparc32());
  const std::vector<hdsm::mem::ByteRange> ranges = {{2, 6}};  // inside padding
  EXPECT_TRUE(idx::map_ranges_to_runs(t, ranges).empty());
}

TEST(MapRanges, RunGeometryHelpers) {
  const idx::IndexTable t(table1_gthv(), plat::linux_ia32());
  idx::UpdateRun run;
  run.row = 4;  // B
  run.first_elem = 10;
  run.count = 25;
  EXPECT_EQ(idx::run_offset(t, run), 4u + 56169u * 4 + 10 * 4);
  EXPECT_EQ(idx::run_byte_length(t, run), 100u);
  EXPECT_EQ(idx::run_tag(t, run).to_string(), "(4,25)");
  idx::UpdateRun pr;
  pr.row = 0;
  pr.first_elem = 0;
  pr.count = 1;
  EXPECT_EQ(idx::run_tag(t, pr).to_string(), "(4,-1)");
}

TEST(MapRanges, RandomPropertyRunsCoverExactlyTouchedElements) {
  auto ty = TypeDesc::struct_of(
      "S", {{"p", TypeDesc::pointer()},
            {"a", TypeDesc::array(tags::t_short(), 333)},
            {"d", TypeDesc::array(tags::t_double(), 55)},
            {"n", tags::t_int()}});
  const idx::IndexTable t(ty, plat::solaris_sparc32());
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    // Generate sorted, disjoint byte ranges.
    std::vector<hdsm::mem::ByteRange> ranges;
    std::uint64_t pos = rng() % 16;
    while (pos < t.image_size()) {
      const std::uint64_t len = 1 + rng() % 40;
      const std::uint64_t end = std::min<std::uint64_t>(pos + len,
                                                        t.image_size());
      ranges.push_back({pos, end});
      pos = end + 1 + rng() % 64;
    }
    const auto runs = idx::map_ranges_to_runs(t, ranges, true);
    // Every touched non-padding byte is covered by some run.
    for (const auto& r : ranges) {
      for (std::uint64_t b = r.begin; b < r.end; ++b) {
        const auto loc = t.locate(b);
        if (t.rows()[loc.row].is_padding()) continue;
        bool covered = false;
        for (const auto& run : runs) {
          if (run.row == loc.row && loc.elem >= run.first_elem &&
              loc.elem < run.first_elem + run.count) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "byte " << b;
      }
    }
    // No run extends past its row.
    for (const auto& run : runs) {
      EXPECT_LE(run.first_elem + run.count,
                t.rows()[run.row].element_count());
      EXPECT_GT(run.count, 0u);
    }
  }
}
