// Transport-shell tests (docs/TRANSPORT.md): the SPSC ring the reactor's
// handoff is built on, the reactor itself — multiplexing, delivery order,
// close semantics, the flush settlement barrier, slow-consumer
// backpressure over real TCP — and the SessionShell mode switch that keeps
// the legacy threaded shell working behind the same directories.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "msg/faulty.hpp"
#include "msg/reactor.hpp"
#include "msg/spsc_ring.hpp"
#include "msg/tcp.hpp"

namespace dsm = hdsm::dsm;
namespace msg = hdsm::msg;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;

using namespace std::chrono_literals;

namespace {

msg::Message tagged(std::uint32_t n, std::uint32_t rank = 0) {
  msg::Message m;
  m.type = msg::MsgType::Hello;
  m.sync_id = n;
  m.rank = rank;
  return m;
}

/// Poll until `pred()` holds; the reactor delivers asynchronously.
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds limit = 2s) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ---- SpscRing ---------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(msg::SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(msg::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(msg::SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(msg::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(msg::SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  msg::SpscRing<int> ring(4);
  int out = 0;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop(out));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.can_push());
    EXPECT_TRUE(ring.push(int{i}));
  }
  EXPECT_FALSE(ring.can_push());
  EXPECT_FALSE(ring.push(99));  // full: item untouched, no overwrite
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, WraparoundPreservesOrderPastCapacity) {
  msg::SpscRing<int> ring(4);
  int next_push = 0, next_pop = 0, out = 0;
  // Mixed-occupancy cycles drive the counters far past the capacity so
  // slot indexing exercises the `counter & mask` wrap repeatedly.
  for (int cycle = 0; cycle < 1000; ++cycle) {
    const int burst = 1 + cycle % 4;
    for (int i = 0; i < burst; ++i) ASSERT_TRUE(ring.push(int{next_push++}));
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_GT(next_pop, 1000);
}

TEST(SpscRing, MoveOnlyElements) {
  msg::SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, TwoThreadStress) {
  // One producer, one consumer, a deliberately tiny ring: every value must
  // come out exactly once and in order.  Run under TSan via -L faults.
  msg::SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.push(std::uint64_t{i})) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0, out = 0;
  while (expected < kCount) {
    if (ring.pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---- Reactor ---------------------------------------------------------------

/// Records every callback, per peer, under one mutex.
struct Recorder final : msg::ReactorHandler {
  std::mutex mu;
  std::map<msg::PeerId, std::vector<std::uint32_t>> received;
  std::map<msg::PeerId, int> closed;
  std::vector<std::pair<msg::PeerId, bool>> order;  // (peer, is_close)

  void on_message(msg::PeerId peer, msg::Message&& m) override {
    std::lock_guard<std::mutex> lk(mu);
    received[peer].push_back(m.sync_id);
    order.emplace_back(peer, false);
  }
  void on_peer_closed(msg::PeerId peer) override {
    std::lock_guard<std::mutex> lk(mu);
    ++closed[peer];
    order.emplace_back(peer, true);
  }
  std::size_t count(msg::PeerId peer) {
    std::lock_guard<std::mutex> lk(mu);
    return received[peer].size();
  }
  int closes(msg::PeerId peer) {
    std::lock_guard<std::mutex> lk(mu);
    return closed[peer];
  }
};

TEST(Reactor, DeliversInOrderAndRepliesOverChannel) {
  Recorder rec;
  msg::Reactor reactor({}, rec);
  auto [home, remote] = msg::make_channel_pair();
  reactor.add_peer(1, std::move(home), 0);

  for (std::uint32_t i = 0; i < 32; ++i) remote->send(tagged(i));
  ASSERT_TRUE(wait_until([&] { return rec.count(1) == 32; }));
  {
    std::lock_guard<std::mutex> lk(rec.mu);
    for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(rec.received[1][i], i);
  }

  reactor.send(1, tagged(100));
  msg::Message m = remote->recv();
  EXPECT_EQ(m.sync_id, 100u);
  EXPECT_GE(reactor.stats().frames_in, 32u);
  // The counter bump trails the channel push inside send_some, so the recv
  // above can return before the io thread reaches it — wait, don't expect.
  EXPECT_TRUE(wait_until([&] { return reactor.stats().frames_out >= 1; }));
}

TEST(Reactor, MultiplexesManyChannelPeers) {
  Recorder rec;
  msg::ReactorOptions opts;
  opts.lanes = 4;
  msg::Reactor reactor(opts, rec);
  constexpr std::uint32_t kPeers = 128;
  std::vector<msg::EndpointPtr> remotes;
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    auto [home, remote] = msg::make_channel_pair();
    reactor.add_peer(p, std::move(home), /*lane=*/p);
    remotes.push_back(std::move(remote));
  }
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    for (std::uint32_t i = 0; i < 8; ++i) remotes[p]->send(tagged(i, p));
    reactor.send(p, tagged(1000 + p));
  }
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lk(rec.mu);
    for (std::uint32_t p = 0; p < kPeers; ++p) {
      if (rec.received[p].size() != 8) return false;
    }
    return true;
  }));
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    msg::Message m = remotes[p]->recv();
    EXPECT_EQ(m.sync_id, 1000 + p);
  }
}

TEST(Reactor, TinyRingsRedrainWithoutDropping) {
  Recorder rec;
  msg::ReactorOptions opts;
  opts.ring_capacity = 2;  // force inbound-ring-full redrain cycles
  opts.lanes = 2;          // ring mode (one io thread + one lane is inline)
  msg::Reactor reactor(opts, rec);
  auto [home, remote] = msg::make_channel_pair();
  reactor.add_peer(1, std::move(home), 0);
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) remote->send(tagged(i));
  ASSERT_TRUE(wait_until([&] { return rec.count(1) == kCount; }, 5s));
  std::lock_guard<std::mutex> lk(rec.mu);
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(rec.received[1][i], i);
}

TEST(Reactor, RemovePeerDeliversQueuedMessagesThenClosedOnce) {
  Recorder rec;
  msg::Reactor reactor({}, rec);
  auto [home, remote] = msg::make_channel_pair();
  reactor.add_peer(7, std::move(home), 0);

  for (std::uint32_t i = 0; i < 5; ++i) remote->send(tagged(i));
  reactor.remove_peer(7);
  reactor.flush();
  ASSERT_TRUE(wait_until([&] { return rec.closes(7) == 1; }));
  {
    std::lock_guard<std::mutex> lk(rec.mu);
    // Drain-then-close: everything the remote queued before the close
    // still delivers, and the close is the final callback.
    EXPECT_EQ(rec.received[7].size(), 5u);
    ASSERT_FALSE(rec.order.empty());
    EXPECT_TRUE(rec.order.back().second);
    EXPECT_EQ(rec.closed[7], 1);
  }
  // Send-after-remove drops silently (the dead gate): no crash, no frame.
  reactor.send(7, tagged(99));
  reactor.flush();
  EXPECT_EQ(rec.closes(7), 1);
}

TEST(Reactor, FlushSettlesPostedSendsWithoutPolling) {
  Recorder rec;
  msg::ReactorOptions opts;
  opts.flush_delay = 10ms;  // coalescing window the barrier must override
  msg::Reactor reactor(opts, rec);
  auto [home, remote] = msg::make_channel_pair();
  reactor.add_peer(1, std::move(home), 0);

  constexpr std::uint32_t kCount = 50;
  for (std::uint32_t i = 0; i < kCount; ++i) reactor.send(1, tagged(i));
  reactor.flush();
  // After the settlement barrier every queued write was attempted: all 50
  // frames are decodable on the remote side right now.
  msg::Message m;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(remote->try_recv(m)) << "frame " << i << " not settled";
    EXPECT_EQ(m.sync_id, i);
  }
  const msg::ReactorStats s = reactor.stats();
  EXPECT_EQ(s.frames_out, kCount);
  // Write coalescing: consecutive messages to one peer merge into gathered
  // sends, so batches number well below frames.
  EXPECT_LT(s.flush_batches, kCount);
  EXPECT_GE(s.flush_batches, 1u);
}

TEST(Reactor, PeerEofDeliversClosed) {
  Recorder rec;
  msg::Reactor reactor({}, rec);
  auto [home, remote] = msg::make_channel_pair();
  reactor.add_peer(3, std::move(home), 0);
  remote->send(tagged(1));
  remote->close();
  ASSERT_TRUE(wait_until([&] { return rec.closes(3) == 1; }));
  EXPECT_EQ(rec.count(3), 1u);
}

TEST(Reactor, FaultyResetSurfacesAsClosed) {
  Recorder rec;
  msg::Reactor reactor({}, rec);
  auto [home, remote] = msg::make_channel_pair();
  msg::FaultOptions fo;
  fo.seed = 42;
  fo.recv.reset_after = 3;  // the 4th frame pulled through the wrapper RSTs
  reactor.add_peer(9, msg::make_faulty(std::move(home), fo), 0);

  for (std::uint32_t i = 0; i < 10; ++i) {
    try {
      remote->send(tagged(i));
    } catch (const msg::ChannelClosed&) {
      break;  // the injected reset closed the transport under us
    }
  }
  ASSERT_TRUE(wait_until([&] { return rec.closes(9) == 1; }));
  EXPECT_LE(rec.count(9), 3u);
}

TEST(Reactor, StopDeliversClosedForEveryPeer) {
  Recorder rec;
  msg::Reactor reactor({}, rec);
  std::vector<msg::EndpointPtr> remotes;
  for (std::uint32_t p = 0; p < 16; ++p) {
    auto [home, remote] = msg::make_channel_pair();
    reactor.add_peer(p, std::move(home), 0);
    remotes.push_back(std::move(remote));
  }
  reactor.stop();
  std::lock_guard<std::mutex> lk(rec.mu);
  for (std::uint32_t p = 0; p < 16; ++p) EXPECT_EQ(rec.closed[p], 1);
}

// ---- Backpressure over real TCP --------------------------------------------

TEST(Reactor, SlowTcpConsumerEvictedWhileHealthyPeerProgresses) {
  Recorder rec;
  msg::ReactorOptions opts;
  // A slow consumer may hold at most ~256 KiB of queued outbound bytes
  // before eviction; kernel socket buffers absorb some more on top.
  opts.max_write_queue_bytes = std::size_t{256} << 10;
  msg::Reactor reactor(opts, rec);

  msg::TcpListener listener(0);
  msg::EndpointPtr slow_client = msg::tcp_connect(listener.port());
  reactor.add_peer(1, std::shared_ptr<msg::Endpoint>(listener.accept()), 0);
  msg::EndpointPtr fast_client = msg::tcp_connect(listener.port());
  reactor.add_peer(2, std::shared_ptr<msg::Endpoint>(listener.accept()), 0);

  // The fast peer drains everything it is sent, concurrently.
  std::atomic<std::uint32_t> fast_received{0};
  std::thread fast_reader([&] {
    try {
      for (;;) {
        msg::Message m = fast_client->recv();
        fast_received.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const msg::ChannelClosed&) {
    }
  });

  // The slow peer never reads: once the kernel buffers fill, its reactor
  // write queue grows past the bound and it is evicted.
  msg::Message big = tagged(0);
  big.payload.resize(std::size_t{64} << 10);
  constexpr std::uint32_t kFastFrames = 200;
  std::uint32_t fast_sent = 0;
  for (std::uint32_t i = 0; i < 4096 && rec.closes(1) == 0; ++i) {
    reactor.send(1, msg::Message{big});
    if (fast_sent < kFastFrames) {
      reactor.send(2, tagged(fast_sent++));
    }
    std::this_thread::sleep_for(100us);
  }
  ASSERT_TRUE(wait_until([&] { return rec.closes(1) == 1; }, 10s))
      << "slow consumer was never evicted";
  EXPECT_GE(reactor.stats().backpressure_closes, 1u);

  // Eviction is per peer: the healthy connection keeps flowing.
  while (fast_sent < kFastFrames) reactor.send(2, tagged(fast_sent++));
  reactor.flush();
  ASSERT_TRUE(wait_until(
      [&] { return fast_received.load(std::memory_order_relaxed) >= kFastFrames; },
      10s));
  EXPECT_EQ(rec.closes(2), 0);

  fast_client->close();
  fast_reader.join();
  reactor.stop();
}

// ---- SessionShell mode switch ----------------------------------------------

tags::TypePtr gthv() {
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), 8)}});
}

void exercise_home(dsm::HomeOptions opts) {
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  home.start();
  home.set_barrier_count(0, 3);

  auto worker = [&](std::uint32_t rank) {
    dsm::RemoteThread remote(gthv(), plat::linux_ia32(), rank,
                             home.attach(rank));
    for (int i = 0; i < 5; ++i) {
      remote.lock(0);
      auto a = remote.space().view<std::int64_t>("A");
      a.set(0, a.get(0) + 1);
      remote.unlock(0);
    }
    remote.barrier(0);
    remote.join();
  };
  std::thread t1(worker, 1), t2(worker, 2);
  home.lock(0);
  home.unlock(0);
  home.barrier(0);
  t1.join();
  t2.join();
  home.wait_all_joined();
  EXPECT_TRUE(home.active_ranks().empty());
  auto a = home.space().view<std::int64_t>("A");
  EXPECT_EQ(a.get(0), 10);
}

TEST(SessionShell, ReactorModeRunsTheProtocol) {
  dsm::HomeOptions opts;
  opts.shell.mode = dsm::ShellOptions::Mode::Reactor;
  exercise_home(opts);
}

TEST(SessionShell, ThreadedModeStillRunsTheProtocol) {
  dsm::HomeOptions opts;
  opts.shell.mode = dsm::ShellOptions::Mode::Threaded;
  exercise_home(opts);
}

}  // namespace
