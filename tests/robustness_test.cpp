// Edge-case and API-surface tests that cut across modules: RAII locking,
// image persistence, every scalar category end-to-end through the DSD,
// option combinations on real workloads, and shutdown/orderly-teardown
// behavior.
#include <gtest/gtest.h>

#include <thread>
#include <unistd.h>

#include "dsm/home.hpp"
#include "dsm/image_io.hpp"
#include "mig/io_state.hpp"
#include "dsm/remote.hpp"
#include "dsm/scoped_lock.hpp"
#include "tags/describe.hpp"
#include "workloads/experiment.hpp"
#include "workloads/sor.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
namespace work = hdsm::work;

namespace {

tags::TypePtr all_kinds_gthv() {
  return tags::describe_struct("AllKinds")
      .array<signed char>("chars", 8)
      .array<unsigned short>("ushorts", 8)
      .array<int>("ints", 8)
      .array<unsigned int>("uints", 8)
      .array<long>("longs", 8)
      .array<long long>("lls", 8)
      .array<float>("floats", 8)
      .array<double>("doubles", 8)
      .array<long double>("lds", 4)
      .pointer("ptr")
      .build();
}

}  // namespace

TEST(ScopedLock, LocksAndUnlocksViaRaii) {
  tags::TypePtr gthv = tags::describe_struct("G").field<int>("x").build();
  dsm::HomeNode home(gthv, plat::linux_ia32());
  home.start();
  {
    dsm::ScopedLock guard(home, 0);
    home.space().view<std::int32_t>("x").set(9);
  }  // unlocks here
  EXPECT_TRUE(home.quiesced());
  {
    dsm::ScopedLock guard(home, 0);
    guard.unlock();  // early release is idempotent with the destructor
  }
  EXPECT_TRUE(home.quiesced());
  home.stop();
}

TEST(ImageIo, SaveOnOnePlatformLoadOnAnother) {
  const std::string path = ::testing::TempDir() + "hdsm_image.bin";
  tags::TypePtr gthv = all_kinds_gthv();
  {
    dsm::GlobalSpace big(gthv, plat::solaris_sparc64());
    big.view<std::int8_t>("chars").set(0, -7);
    big.view<std::uint16_t>("ushorts").set(1, 60000);
    big.view<std::int32_t>("ints").set(2, -123456);
    big.view<std::uint32_t>("uints").set(3, 0xdeadbeef);
    big.view<std::int64_t>("longs").set(4, -5000000000LL);
    big.view<std::int64_t>("lls").set(5, 1LL << 60);
    big.view<float>("floats").set(6, 1.5f);
    big.view<double>("doubles").set(7, -2.25);
    big.view<double>("lds").set(1, 3.75);  // binary128 storage
    big.view<std::uint64_t>("ptr").set(0x42);
    dsm::save_image(big, path);
  }
  dsm::GlobalSpace little(gthv, plat::linux_ia32());
  dsm::load_image(little, path);
  EXPECT_EQ(little.view<std::int8_t>("chars").get(0), -7);
  EXPECT_EQ(little.view<std::uint16_t>("ushorts").get(1), 60000);
  EXPECT_EQ(little.view<std::int32_t>("ints").get(2), -123456);
  EXPECT_EQ(little.view<std::uint32_t>("uints").get(3), 0xdeadbeefu);
  // long is 4 bytes on IA-32: the value truncates two's-complement style,
  // exactly as CGT-RMR narrows any integer.
  EXPECT_EQ(little.view<std::int64_t>("lls").get(5), 1LL << 60);
  EXPECT_EQ(little.view<float>("floats").get(6), 1.5f);
  EXPECT_EQ(little.view<double>("doubles").get(7), -2.25);
  EXPECT_EQ(little.view<double>("lds").get(1), 3.75);  // x87 storage now
  EXPECT_EQ(little.view<std::uint64_t>("ptr").get(), 0x42u);
  ::unlink(path.c_str());
}

TEST(ImageIo, CorruptFilesRejected) {
  const std::string path = ::testing::TempDir() + "hdsm_image_bad.bin";
  {
    hdsm::mig::MigratableFile f =
        hdsm::mig::MigratableFile::open(path, hdsm::mig::FileMode::Write);
    f.write("HDSMIMG1\x00\x00\x00\x00\x00\x10garbage", 22);
  }
  tags::TypePtr gthv = tags::describe_struct("G").field<int>("x").build();
  dsm::GlobalSpace g(gthv, plat::linux_ia32());
  EXPECT_THROW(dsm::load_image(g, path), std::runtime_error);
  ::unlink(path.c_str());
}

TEST(ImageIo, ShapeMismatchRejected) {
  const std::string path = ::testing::TempDir() + "hdsm_image_shape.bin";
  tags::TypePtr a = tags::describe_struct("A").array<int>("v", 4).build();
  tags::TypePtr b = tags::describe_struct("B").array<int>("v", 5).build();
  {
    dsm::GlobalSpace ga(a, plat::linux_ia32());
    dsm::save_image(ga, path);
  }
  dsm::GlobalSpace gb(b, plat::linux_ia32());
  EXPECT_THROW(dsm::load_image(gb, path), std::runtime_error);
  ::unlink(path.c_str());
}

TEST(ImageIo, CheckpointRestartResumesSharedComputation) {
  // Save the master image mid-run; a fresh "restarted" home continues.
  const std::string path = ::testing::TempDir() + "hdsm_image_resume.bin";
  tags::TypePtr gthv =
      tags::describe_struct("G").array<long long>("acc", 32).build();
  {
    dsm::HomeNode home(gthv, plat::linux_ia32());
    home.start();
    home.lock(0);
    auto acc = home.space().view<std::int64_t>("acc");
    for (int i = 0; i < 16; ++i) acc.set(i, 100 + i);
    home.unlock(0);
    dsm::save_image(home.space(), path);
    home.stop();
  }
  dsm::HomeNode restarted(gthv, plat::solaris_sparc32());
  dsm::load_image(restarted.space(), path);
  restarted.start();
  restarted.lock(0);
  auto acc = restarted.space().view<std::int64_t>("acc");
  for (int i = 16; i < 32; ++i) acc.set(i, 100 + i);
  restarted.unlock(0);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(acc.get(i), 100 + i);
  restarted.stop();
  ::unlink(path.c_str());
}

TEST(DsdEndToEnd, EveryScalarCategoryCrossesTheBoundary) {
  tags::TypePtr gthv = all_kinds_gthv();
  dsm::HomeNode home(gthv, plat::linux_ia32());
  dsm::RemoteThread remote(gthv, plat::solaris_sparc64(), 1, home.attach(1));
  home.start();
  std::thread t([&] {
    remote.lock(0);
    remote.space().view<std::int8_t>("chars").set(0, -100);
    remote.space().view<std::uint16_t>("ushorts").set(0, 54321);
    remote.space().view<std::int32_t>("ints").set(0, -1);
    remote.space().view<std::uint32_t>("uints").set(0, 4000000000u);
    remote.space().view<std::int64_t>("longs").set(0, -77);  // 8B there, 4B home
    remote.space().view<std::int64_t>("lls").set(0, -(1LL << 40));
    remote.space().view<float>("floats").set(0, -0.25f);
    remote.space().view<double>("doubles").set(0, 1e100);
    remote.space().view<double>("lds").set(0, -6.5);
    remote.space().view<std::uint64_t>("ptr").set(99);
    remote.unlock(0);
    remote.join();
  });
  t.join();
  home.wait_all_joined();
  EXPECT_EQ(home.space().view<std::int8_t>("chars").get(0), -100);
  EXPECT_EQ(home.space().view<std::uint16_t>("ushorts").get(0), 54321);
  EXPECT_EQ(home.space().view<std::int32_t>("ints").get(0), -1);
  EXPECT_EQ(home.space().view<std::uint32_t>("uints").get(0), 4000000000u);
  EXPECT_EQ(home.space().view<std::int64_t>("longs").get(0), -77);
  EXPECT_EQ(home.space().view<std::int64_t>("lls").get(0), -(1LL << 40));
  EXPECT_EQ(home.space().view<float>("floats").get(0), -0.25f);
  EXPECT_EQ(home.space().view<double>("doubles").get(0), 1e100);
  EXPECT_EQ(home.space().view<double>("lds").get(0), -6.5);
  EXPECT_EQ(home.space().view<std::uint64_t>("ptr").get(), 99u);
  home.stop();
}

TEST(Options, MatmulCorrectUnderEveryOptionCombination) {
  for (const bool binary_tags : {false, true}) {
    for (const bool bulk_swap : {false, true}) {
      for (const bool coalesce : {false, true}) {
        dsm::HomeOptions opts;
        opts.dsd.binary_tags = binary_tags;
        opts.dsd.bulk_swap_fastpath = bulk_swap;
        opts.dsd.coalesce_runs = coalesce;
        const auto r =
            work::run_matmul_experiment(work::paper_pairs()[2], 12, opts);
        EXPECT_TRUE(r.verified)
            << "binary=" << binary_tags << " bulk=" << bulk_swap
            << " coalesce=" << coalesce;
      }
    }
  }
}

TEST(Options, SorCorrectWithMergeSlack) {
  dsm::HomeOptions opts;
  opts.dsd.merge_slack = 8;  // ships some untouched bytes — must stay exact
  dsm::Cluster cluster(work::sor_gthv(10), plat::solaris_sparc32(),
                       {&plat::linux_ia32(), &plat::linux_ia32()}, opts);
  const auto grid = work::run_sor(cluster, 10, 6, 1.4);
  const auto ref = work::sor_reference(10, 6, 1.4);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i], ref[i]) << "cell " << i;
  }
}

TEST(Shutdown, StopWithActiveRemotesUnblocksThem) {
  tags::TypePtr gthv = tags::describe_struct("G").field<int>("x").build();
  auto home = std::make_unique<dsm::HomeNode>(gthv, plat::linux_ia32());
  auto ep = home->attach(1);
  dsm::RemoteThread remote(gthv, plat::linux_ia32(), 1, std::move(ep));
  home->start();
  home->lock(0);  // master holds the lock forever
  std::thread blocked([&] {
    // The remote waits for a grant that never comes; stop() must unblock
    // it with ChannelClosed rather than leaving it hung.
    EXPECT_THROW(remote.lock(0), msg::ChannelClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  home->stop();
  blocked.join();
}

TEST(Shutdown, RemoteProtocolViolationSurfacesAsLogicError) {
  // Feed the remote an unexpected reply type through a raw channel.
  tags::TypePtr gthv = tags::describe_struct("G").field<int>("x").build();
  auto [fake_home, remote_side] = msg::make_channel_pair();
  dsm::RemoteThread remote(gthv, plat::linux_ia32(), 1,
                           std::move(remote_side));
  (void)fake_home->recv();  // the Hello
  std::thread responder([&] {
    (void)fake_home->recv();  // the LockRequest
    msg::Message wrong;
    wrong.type = msg::MsgType::BarrierRelease;  // not a grant
    fake_home->send(wrong);
  });
  EXPECT_THROW(remote.lock(0), std::logic_error);
  responder.join();
}

TEST(Negotiation, MismatchedGthvRejectedAtAttach) {
  // A remote built against a different GThV must be detached on its Hello,
  // before any updates can corrupt the master image.
  tags::TypePtr home_gthv =
      tags::describe_struct("G").array<int>("A", 16).build();
  tags::TypePtr wrong_gthv =
      tags::describe_struct("G").array<int>("A", 17).build();
  dsm::HomeNode home(home_gthv, plat::linux_ia32());
  home.start();
  auto ep = home.attach(1);
  dsm::RemoteThread wrong(wrong_gthv, plat::linux_ia32(), 1, std::move(ep));
  EXPECT_THROW(wrong.lock(0), msg::ChannelClosed);
  home.wait_all_joined();  // the offender was detached
  home.stop();
}

TEST(Negotiation, SameShapeDifferentPlatformAccepted) {
  // Heterogeneous tags (different sizes) for the same structure pass.
  tags::TypePtr gthv = tags::describe_struct("G")
                           .pointer("p")
                           .array<long>("A", 8)
                           .build();
  dsm::HomeNode home(gthv, plat::linux_ia32());
  dsm::RemoteThread remote(gthv, plat::solaris_sparc64(), 1, home.attach(1));
  home.start();
  remote.lock(0);
  remote.space().view<std::int64_t>("A").set(0, 5);
  remote.unlock(0);
  remote.join();
  home.wait_all_joined();
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(0), 5);
  home.stop();
}

TEST(Csv, ShareStatsRowsAreWellFormed) {
  dsm::ShareStats s;
  s.index_ns = 1;
  s.tag_ns = 2;
  s.conv_ns = 5;
  s.locks = 7;
  const std::string header = dsm::ShareStats::csv_header();
  const std::string row = s.to_csv_row();
  const auto commas = [](const std::string& x) {
    return std::count(x.begin(), x.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(row.find("1,2,0,0,5,8,7"), std::string::npos);
}

TEST(Csv, ReliabilityCountersSerialize) {
  // Every ShareStats field — including the reliability counters — must make
  // it into the bench emitters' CSV, in header order.
  const std::string header = dsm::ShareStats::csv_header();
  for (const char* col :
       {"retries", "timeouts", "duplicates_dropped", "reconnects"}) {
    EXPECT_NE(header.find(col), std::string::npos) << col;
  }
  dsm::ShareStats s;
  s.retries = 3;
  s.timeouts = 4;
  s.duplicates_dropped = 5;
  s.reconnects = 6;
  const std::string row = s.to_csv_row();
  EXPECT_NE(row.find(",3,4,5,6"), std::string::npos) << row;
  // The counters aggregate across nodes like every other field.
  dsm::ShareStats sum;
  sum += s;
  sum += s;
  EXPECT_EQ(sum.retries, 6u);
  EXPECT_EQ(sum.reconnects, 12u);
  // And the human rendering mentions them once any is nonzero.
  EXPECT_NE(s.to_string().find("retries=3"), std::string::npos);
  EXPECT_EQ(dsm::ShareStats{}.to_string().find("retries="),
            std::string::npos);
}
