// The sharded home directory (docs/SHARDING.md): deterministic shard-map
// placement pinned by golden values, map-epoch revalidation on the wire,
// single-shard parity with the classic home, cross-shard release
// consistency via pending-mask drains, online region migration, and the
// scheduler wiring that turns per-shard busy telemetry into migrations.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "dsm/sharded_cluster.hpp"
#include "dsm/sharded_home.hpp"
#include "dsm/sharded_remote.hpp"
#include "dsm/shard_map.hpp"
#include "dsm/trace.hpp"
#include "dsm/update.hpp"
#include "msg/message.hpp"
#include "obj/object_space.hpp"
#include "sched/shard_balance.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
namespace sched = hdsm::sched;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kElems = 64;

tags::TypePtr gthv() {
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), kElems)}});
}

msg::Message raw(msg::MsgType t, std::uint32_t seq, std::uint32_t sync_id,
                 const std::string& tag = "",
                 std::vector<std::byte> payload = {}) {
  msg::Message m;
  m.type = t;
  m.seq = seq;
  m.sync_id = sync_id;
  m.rank = 1;
  m.sender = msg::PlatformSummary::of(plat::linux_ia32());
  m.tag = tag;
  m.payload = std::move(payload);
  return m;
}

std::vector<std::byte> no_blocks() { return dsm::encode_update_blocks({}); }

/// Same deterministic op streams as fault_test: the expected master image
/// is computable without running the cluster.
std::vector<std::pair<std::uint64_t, std::int64_t>> ops_of(std::uint32_t rank,
                                                           int ops) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> v;
  std::mt19937_64 rng(500 + rank);
  for (int i = 0; i < ops; ++i) {
    v.emplace_back(rng() % kElems,
                   static_cast<std::int64_t>(rng() % 100) - 50);
  }
  return v;
}

std::vector<std::int64_t> expected_array(std::uint32_t num_remotes, int ops) {
  std::vector<std::int64_t> e(kElems, 0);
  for (std::uint32_t r = 1; r <= num_remotes; ++r) {
    for (const auto& [idx, delta] : ops_of(r, ops)) e[idx] += delta;
  }
  return e;
}

void run_workload(dsm::ShardedRemote& remote, int ops, std::uint32_t lock) {
  for (const auto& [idx, delta] : ops_of(remote.rank(), ops)) {
    remote.lock(lock);
    auto a = remote.space().view<std::int64_t>("A");
    a.set(idx, a.get(idx) + delta);
    remote.unlock(lock);
  }
  remote.barrier(0);
  remote.join();
}

void expect_image(dsm::GlobalSpace& space,
                  const std::vector<std::int64_t>& expected) {
  auto a = space.view<std::int64_t>("A");
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
  }
}

void expect_valid(const dsm::TraceLog& log, const char* which) {
  const auto err = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(err.has_value()) << which << ": " << *err;
}

}  // namespace

// ---- ShardMap: deterministic placement + wire form -------------------------

TEST(ShardMap, GoldenHashValuesArePinned) {
  // FNV-1a (64-bit, offset 0xcbf29ce484222325, prime 0x100000001b3) over
  // the region id's four little-endian bytes, xor-folded, mod num_shards.
  // These values are part of the wire protocol: every node, whatever its
  // platform or standard library, must place regions identically.  If this
  // test fails, the hash changed and mixed-version clusters will corrupt
  // routing — bump the protocol instead.
  EXPECT_EQ(dsm::ShardMap::hash_shard(0, 2), 0u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(1, 2), 1u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(2, 2), 1u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(7, 2), 0u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(0, 4), 2u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(1, 4), 3u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(3, 4), 1u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(7, 4), 0u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(0, 8), 2u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(2, 8), 7u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(5, 8), 5u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(16, 8), 0u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(0, 32), 10u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(1, 32), 19u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(100, 32), 24u);
  EXPECT_EQ(dsm::ShardMap::hash_shard(1000, 32), 4u);
  // One shard: everything lands on shard 0.
  for (std::uint32_t r = 0; r < 64; ++r) {
    EXPECT_EQ(dsm::ShardMap::hash_shard(r, 1), 0u);
  }
}

TEST(ShardMap, GoldenObjectIdRegionPlacementsArePinned) {
  // The object-granularity layer (hdsm::obj, docs/OBJECTS.md) stripes
  // 64-bit object ids over regions with the 64-bit twin of hash_shard:
  // FNV-1a over the id's eight little-endian bytes, xor-folded, mod
  // num_regions.  Same never-std::hash rule, same reason — an object's
  // region (and through the region, its shard) is wire-protocol state.
  // The object id namespace is ((class + 1) << 48) | index.
  const auto id = [](std::uint32_t cls, std::uint64_t index) {
    return (static_cast<std::uint64_t>(cls + 1) << 48) | index;
  };
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(0, 0), 2), 0u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(0, 4), 2), 1u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(0, 0), 4), 2u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(0, 100), 16), 7u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(1, 0), 16), 5u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(0, 0), 64), 46u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(0, 999999), 64), 57u);
  EXPECT_EQ(hdsm::obj::ObjectLayout::hash_region(id(2, 123456), 64), 46u);
}

TEST(ShardMap, OverridesBumpEpochAndRoundTrip) {
  dsm::ShardMap map(4);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.shard_of(0), dsm::ShardMap::hash_shard(0, 4));

  map.set_override(0, 3);
  EXPECT_EQ(map.epoch(), 2u);
  EXPECT_EQ(map.shard_of(0), 3u);
  EXPECT_EQ(map.override_count(), 1u);

  // Moving a region back to its hash home erases the table entry but
  // still bumps the epoch: remotes must revalidate either way.
  map.set_override(0, dsm::ShardMap::hash_shard(0, 4));
  EXPECT_EQ(map.epoch(), 3u);
  EXPECT_EQ(map.override_count(), 0u);
  EXPECT_EQ(map.shard_of(0), dsm::ShardMap::hash_shard(0, 4));

  map.set_override(5, 1);
  map.set_override(9, 2);
  const std::vector<std::byte> wire = map.serialize();
  const auto back = dsm::ShardMap::deserialize(wire.data(), wire.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, map);
  EXPECT_EQ(back->epoch(), 5u);
  EXPECT_EQ(back->shard_of(5), 1u);

  EXPECT_THROW(map.set_override(0, 4), std::out_of_range);
  EXPECT_THROW(dsm::ShardMap(0), std::invalid_argument);
  EXPECT_THROW(dsm::ShardMap(33), std::invalid_argument);
}

TEST(ShardMap, DeserializeRejectsMalformedInput) {
  dsm::ShardMap map(2);
  map.set_override(1, 0);
  std::vector<std::byte> wire = map.serialize();

  EXPECT_FALSE(dsm::ShardMap::deserialize(nullptr, 0).has_value());
  EXPECT_FALSE(dsm::ShardMap::deserialize(wire.data(), 11).has_value());
  // Truncated override table.
  EXPECT_FALSE(
      dsm::ShardMap::deserialize(wire.data(), wire.size() - 1).has_value());
  // num_shards out of range.
  std::vector<std::byte> bad = wire;
  bad[3] = static_cast<std::byte>(0);
  EXPECT_FALSE(dsm::ShardMap::deserialize(bad.data(), bad.size()).has_value());
  // Override target >= num_shards.
  bad = wire;
  bad[wire.size() - 1] = static_cast<std::byte>(7);
  EXPECT_FALSE(dsm::ShardMap::deserialize(bad.data(), bad.size()).has_value());
}

TEST(ShardMap, FrameHeaderCarriesEpochAndAux) {
  // map_epoch and aux ride the 40-byte frame header (docs/PROTOCOL.md §1)
  // and must survive an encode/decode round trip bit-exactly.
  msg::Message m = raw(msg::MsgType::LockGrant, 17, 3);
  m.map_epoch = 0x01020304u;
  m.aux = 0xa5a50f0fu;
  const std::vector<std::byte> frame = msg::encode_frame(m);
  msg::FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  msg::Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.type, msg::MsgType::LockGrant);
  EXPECT_EQ(out.seq, 17u);
  EXPECT_EQ(out.sync_id, 3u);
  EXPECT_EQ(out.map_epoch, 0x01020304u);
  EXPECT_EQ(out.aux, 0xa5a50f0fu);
  // The new message types decode as themselves.
  for (const msg::MsgType t : {msg::MsgType::WrongShard,
                               msg::MsgType::PendingPull,
                               msg::MsgType::PendingReply}) {
    msg::Message q = raw(t, 1, 0);
    const std::vector<std::byte> f2 = msg::encode_frame(q);
    msg::FrameDecoder d2;
    d2.feed(f2.data(), f2.size());
    msg::Message o2;
    ASSERT_TRUE(d2.next(o2));
    EXPECT_EQ(o2.type, t);
  }
}

// ---- single-shard parity ---------------------------------------------------

TEST(ShardedHome, OneShardBehavesLikeSingleHome) {
  // num_shards == 1 must be behaviorally identical to HomeNode: no
  // redirects, no pending masks, no pulls — just the classic DSD protocol
  // with the same converged image.
  dsm::TraceLog log;
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 1;
  opts.shard_traces = {&log};
  dsm::ShardedCluster cluster(gthv(), plat::linux_ia32(),
                              {&plat::linux_ia32(), &plat::linux_ia32()},
                              opts);
  constexpr int kOps = 12;
  cluster.run(
      [&](dsm::ShardedHome& home) {
        home.set_barrier_count(0, 3);
        home.barrier(0);
        home.wait_all_joined();
      },
      [&](dsm::ShardedRemote& remote) { run_workload(remote, kOps, 0); });

  expect_image(cluster.home().space(), expected_array(2, kOps));
  const dsm::ShareStats total = cluster.total_stats();
  EXPECT_EQ(total.wrong_shard_redirects, 0u);
  EXPECT_EQ(total.pending_pulls, 0u);
  EXPECT_EQ(total.region_migrations, 0u);
  expect_valid(log, "shard 0");
}

// ---- multi-shard convergence + cross-shard release consistency -------------

TEST(ShardedHome, FourShardsConvergeAcrossRegions) {
  // Three remotes each hammer a different mutex; with four shards the
  // regions land on different directory shards (0→2, 1→3, 3→1), yet the
  // shared data plane must merge every release into one coherent image.
  std::vector<dsm::TraceLog> logs(4);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 4;
  for (auto& l : logs) opts.shard_traces.push_back(&l);
  dsm::ShardedCluster cluster(
      gthv(), plat::linux_ia32(),
      {&plat::linux_ia32(), &plat::linux_ia32(), &plat::linux_ia32()}, opts);
  // Each rank works under its own mutex, so nothing orders their critical
  // sections against each other — they must write disjoint elements (a
  // shared element under different locks is a data race by construction).
  constexpr int kOps = 10;
  constexpr std::uint64_t kStripe = kElems / 3;
  const auto stripe_elem = [](std::uint32_t rank, std::uint64_t idx) {
    return (rank - 1) * kStripe + idx % kStripe;
  };
  cluster.run(
      [&](dsm::ShardedHome& home) {
        home.set_barrier_count(0, 4);
        home.barrier(0);
        home.wait_all_joined();
      },
      [&](dsm::ShardedRemote& remote) {
        // Rank r works under mutex r - 1: ranks spread across shards.
        for (const auto& [idx, delta] : ops_of(remote.rank(), kOps)) {
          remote.lock(remote.rank() - 1);
          auto a = remote.space().view<std::int64_t>("A");
          const std::uint64_t e = stripe_elem(remote.rank(), idx);
          a.set(e, a.get(e) + delta);
          remote.unlock(remote.rank() - 1);
        }
        remote.barrier(0);
        remote.join();
      });

  std::vector<std::int64_t> expected(kElems, 0);
  for (std::uint32_t r = 1; r <= 3; ++r) {
    for (const auto& [idx, delta] : ops_of(r, kOps)) {
      expected[stripe_elem(r, idx)] += delta;
    }
  }
  expect_image(cluster.home().space(), expected);
  EXPECT_EQ(cluster.total_stats().wrong_shard_redirects, 0u);
  for (int s = 0; s < 4; ++s) expect_valid(logs[s], "shard");
}

TEST(ShardedHome, CrossShardReleaseIsVisibleAfterAcquire) {
  // Release consistency across shards: rank 1 releases its write at the
  // shard owning mutex 0; rank 2 then acquires mutex 1 — owned by the
  // *other* shard — and must still observe the write.  The grant's aux
  // bitmask names the shard holding rank 2's pending bytes and the remote
  // drains it with PendingPull before the acquire returns.
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  dsm::ShardedHome home(gthv(), plat::linux_ia32(), opts);
  ASSERT_EQ(home.shard_of(0), 0u);
  ASSERT_EQ(home.shard_of(1), 1u);
  dsm::ShardedRemote r1(gthv(), plat::linux_ia32(), 1, home.attach(1));
  dsm::ShardedRemote r2(gthv(), plat::linux_ia32(), 2, home.attach(2));
  home.start();

  r1.lock(0);
  r1.space().view<std::int64_t>("A").set(7, 1234);
  r1.unlock(0);

  r2.lock(1);
  EXPECT_EQ(r2.space().view<std::int64_t>("A").get(7), 1234);
  r2.unlock(1);

  r1.join();
  r2.join();
  home.wait_all_joined();
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(7), 1234);
  // The drain really crossed shards (it also carried rank 2's initial
  // full-image grant, seeded at shard 0).
  EXPECT_GE(home.stats().pending_pulls, 1u);
  home.stop();
}

// ---- WrongShard redirects + migration --------------------------------------

TEST(ShardedHome, StaleMapRequestIsRedirectedNotMisapplied) {
  // The remote caches the map at attach; migrating mutex 0 behind its back
  // makes its next request land at the old owner, which must bounce it
  // (WrongShard + fresh map) rather than serve wrong-home state.  The
  // retried request succeeds at the new owner transparently.
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  dsm::ShardedHome home(gthv(), plat::linux_ia32(), opts);
  dsm::ShardedRemote remote(gthv(), plat::linux_ia32(), 1, home.attach(1));
  home.start();

  remote.lock(0);  // cached map is fresh: no bounce
  remote.unlock(0);
  EXPECT_EQ(remote.stats().wrong_shard_redirects, 0u);
  EXPECT_EQ(remote.shard_map().epoch(), 1u);

  const auto pause = home.migrate_region(0, 1);
  EXPECT_GE(pause.count(), 0);
  EXPECT_EQ(home.shard_of(0), 1u);

  remote.lock(0);  // routed by the stale map → bounced → re-issued
  remote.space().view<std::int64_t>("A").set(0, 77);
  remote.unlock(0);
  EXPECT_GE(remote.stats().wrong_shard_redirects, 1u);
  EXPECT_EQ(remote.shard_map().epoch(), 2u);
  EXPECT_EQ(remote.shard_map().shard_of(0), 1u);
  EXPECT_GE(home.stats().wrong_shard_redirects, 1u);
  EXPECT_EQ(home.stats().region_migrations, 1u);

  remote.join();
  home.wait_all_joined();
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(0), 77);
  home.stop();
}

TEST(ShardedHome, MigratedReplyCacheAnswersRedirectedRetry) {
  // The lost-grant window: a request executes at the old owner, the region
  // migrates, and the remote — never having seen the reply — re-issues at
  // the new owner with aux = the bounced attempt's seq.  The new owner
  // must answer from the reply cache that traveled with the region, not
  // execute the request a second time.
  dsm::TraceLog log0;
  dsm::TraceLog log1;
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  opts.shard_traces = {&log0, &log1};
  dsm::ShardedHome home(gthv(), plat::linux_ia32(), opts);
  std::vector<msg::EndpointPtr> eps = home.attach(1);
  ASSERT_EQ(eps.size(), 2u);
  home.start();
  const std::string tag = home.space().image_tag_text();

  eps[0]->send(raw(msg::MsgType::Hello, 0, /*epoch=*/21, tag));
  eps[1]->send(raw(msg::MsgType::Hello, 0, 21, tag));
  eps[0]->send(raw(msg::MsgType::LockRequest, 1, 0));
  msg::Message reply = eps[0]->recv();
  ASSERT_EQ(reply.type, msg::MsgType::LockGrant);
  ASSERT_EQ(reply.seq, 1u);

  // The region moves — carrying the cached grant keyed by seq 1.
  home.migrate_region(0, 1);

  // A timeout retransmit of the request — same seq, as a real remote
  // retries — reaches the old owner: bounced at the shell with the
  // authoritative map, never re-executed.
  eps[0]->send(raw(msg::MsgType::LockRequest, 1, 0));
  reply = eps[0]->recv();
  ASSERT_EQ(reply.type, msg::MsgType::WrongShard);
  EXPECT_EQ(reply.seq, 1u);
  EXPECT_EQ(reply.map_epoch, 2u);
  const auto fresh =
      dsm::ShardMap::deserialize(reply.payload.data(), reply.payload.size());
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->epoch(), 2u);
  EXPECT_EQ(fresh->shard_of(0), 1u);

  // Re-issue at the new owner, aux = the bounced attempt's seq.  The
  // migrated cache answers; the lock is NOT granted twice.
  msg::Message retry = raw(msg::MsgType::LockRequest, 2, 0);
  retry.aux = 1;
  eps[1]->send(retry);
  reply = eps[1]->recv();
  EXPECT_EQ(reply.type, msg::MsgType::LockGrant);
  EXPECT_EQ(reply.seq, 2u);

  // The episode completes normally at the new owner.
  eps[1]->send(raw(msg::MsgType::UnlockRequest, 3, 0, "", no_blocks()));
  reply = eps[1]->recv();
  EXPECT_EQ(reply.type, msg::MsgType::UnlockAck);

  bool replayed = false;
  for (const dsm::TraceEvent& e : log1.snapshot()) {
    if (e.kind == dsm::TraceEvent::Kind::ReplyResent) replayed = true;
  }
  EXPECT_TRUE(replayed);
  expect_valid(log0, "old owner");
  expect_valid(log1, "new owner");
  for (auto& ep : eps) ep->close();
  home.stop();
}

TEST(ShardedHome, OnlineMigrationUnderLoadLosesNothing) {
  // Regions migrate continuously while two remotes hammer the mutex; every
  // grant and every released byte must survive each handoff.
  std::vector<dsm::TraceLog> logs(2);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  opts.shard_traces = {&logs[0], &logs[1]};
  dsm::ShardedHome home(gthv(), plat::linux_ia32(), opts);
  dsm::ShardedRemote r1(gthv(), plat::linux_ia32(), 1, home.attach(1));
  dsm::ShardedRemote r2(gthv(), plat::linux_ia32(), 2, home.attach(2));
  home.start();
  home.set_barrier_count(0, 3);

  constexpr int kOps = 25;
  std::atomic<bool> done{false};
  std::thread t1([&] { run_workload(r1, kOps, 0); });
  std::thread t2([&] { run_workload(r2, kOps, 0); });
  std::thread migrator([&] {
    std::uint32_t dst = 1;
    while (!done.load()) {
      home.migrate_region(0, dst);
      dst ^= 1u;
      std::this_thread::sleep_for(300us);
    }
  });
  home.barrier(0);
  t1.join();
  t2.join();
  done.store(true);
  migrator.join();
  home.wait_all_joined();

  expect_image(home.space(), expected_array(2, kOps));
  EXPECT_GE(home.stats().region_migrations, 2u);
  expect_valid(logs[0], "shard 0");
  expect_valid(logs[1], "shard 1");
  home.stop();
}

// ---- scheduler wiring ------------------------------------------------------

TEST(ShardBalance, PlansMovesOffTheHotShardDeterministically) {
  // One shard explains all the busy time; the policy must move regions off
  // it, and the plan must be a pure function of its inputs.
  const std::vector<sched::HotRegion> regions = {
      {0, 2}, {3, 1}, {5, 2}, {9, 2}};
  std::vector<std::uint64_t> busy = {0, 0, 900'000'000, 0};
  const std::uint64_t wall = 1'000'000'000;

  const auto plan = sched::plan_shard_moves(4, regions, busy, wall);
  ASSERT_FALSE(plan.empty());
  for (const sched::RegionMove& mv : plan) {
    EXPECT_EQ(mv.src, 2u);   // only the hot shard sheds load
    EXPECT_NE(mv.dst, 2u);
    bool hosted = false;
    for (const auto& r : regions) {
      if (r.region == mv.region && r.owner == mv.src) hosted = true;
    }
    EXPECT_TRUE(hosted) << "moved a region the source does not own";
  }
  EXPECT_EQ(plan, sched::plan_shard_moves(4, regions, busy, wall));

  // Level load, nothing to do.
  busy = {250'000'000, 250'000'000, 250'000'000, 250'000'000};
  EXPECT_TRUE(sched::plan_shard_moves(4, regions, busy, wall).empty());
  // Degenerate inputs are refused rather than mis-planned.
  EXPECT_TRUE(sched::plan_shard_moves(1, regions, busy, wall).empty());
  EXPECT_TRUE(sched::plan_shard_moves(4, {}, busy, wall).empty());
  EXPECT_TRUE(sched::plan_shard_moves(4, regions, busy, 0).empty());
  EXPECT_TRUE(sched::plan_shard_moves(4, regions, {0, 0}, wall).empty());
  EXPECT_TRUE(
      sched::plan_shard_moves(2, {{0, 5}}, {900, 0}, wall).empty());
}

TEST(ShardBalance, ReadsBusyCountersFromTelemetryRow) {
  hdsm::obs::MetricsSnapshot metrics;
  metrics.counters["shard.0.busy_ns"] = 5;
  metrics.counters["shard.2.busy_ns"] = 7;
  metrics.counters["unrelated"] = 99;
  const auto busy = sched::shard_busy_from_metrics(metrics, 3);
  EXPECT_EQ(busy, (std::vector<std::uint64_t>{5, 0, 7}));
}

TEST(ShardedHome, TelemetryScrapeDrivesRebalance) {
  // The full adaptive loop from the issue: run a hot-region workload, pull
  // the cluster scrape, lift the per-shard busy signal out of the rank-0
  // row, plan moves, and execute them online.
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 4;
  opts.obs.enabled = true;
  dsm::ShardedCluster cluster(gthv(), plat::linux_ia32(),
                              {&plat::linux_ia32(), &plat::linux_ia32()},
                              opts);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kOps = 15;
  cluster.run(
      [&](dsm::ShardedHome& home) {
        home.set_barrier_count(0, 3);
        home.barrier(0);
        home.wait_all_joined();
      },
      [&](dsm::ShardedRemote& remote) { run_workload(remote, kOps, 0); });
  const std::uint64_t wall = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  const hdsm::obs::ClusterTelemetry view = cluster.telemetry();
  ASSERT_FALSE(view.nodes.empty());
  const hdsm::obs::NodeSnapshot& row = view.nodes.front();
  ASSERT_EQ(row.rank, 0u);
  // Every shard publishes its counters into the merged rank-0 row.
  for (std::uint32_t s = 0; s < 4; ++s) {
    const std::string prefix = "shard." + std::to_string(s) + ".";
    EXPECT_TRUE(row.metrics.counters.count(prefix + "busy_ns")) << prefix;
    EXPECT_TRUE(row.metrics.counters.count(prefix + "ops")) << prefix;
    EXPECT_TRUE(row.metrics.counters.count(prefix + "migrations")) << prefix;
    EXPECT_TRUE(row.metrics.counters.count(prefix + "wrong_shard")) << prefix;
  }

  dsm::ShardedHome& home = cluster.home();
  const std::uint32_t hot = home.shard_of(0);
  std::vector<std::uint64_t> busy =
      sched::shard_busy_from_metrics(row.metrics, 4);
  EXPECT_GT(busy[hot], 0u);  // the busy signal flowed through the scrape

  // Sharpen the measured signal into an unambiguous imbalance (short test
  // runs leave most of the wall clock idle) and close the loop.
  for (std::uint32_t s = 0; s < 4; ++s) {
    if (s != hot) busy[s] = 0;
  }
  const auto plan = sched::plan_shard_moves(
      4, {{0, hot}}, busy, std::min<std::uint64_t>(wall, busy[hot] + 1));
  ASSERT_FALSE(plan.empty());
  // With a single region carrying all the load the planner may shuffle it
  // more than once while it balances; the contract is that the plan sheds
  // the hot shard and every move executes online.
  bool shed_hot = false;
  for (const sched::RegionMove& mv : plan) {
    if (mv.src == hot && mv.dst != hot) shed_hot = true;
    home.migrate_region(mv.region, mv.dst);
    EXPECT_EQ(home.shard_of(mv.region), mv.dst);
  }
  EXPECT_TRUE(shed_hot);
  EXPECT_GT(home.shard_map().epoch(), 1u);
}
