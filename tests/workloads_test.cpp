// Tests for the matrix multiplication and LU workloads across the paper's
// platform pairs: distributed results must match serial references exactly.
#include <gtest/gtest.h>

#include "workloads/experiment.hpp"
#include "workloads/sor.hpp"

namespace work = hdsm::work;
namespace dsm = hdsm::dsm;
namespace plat = hdsm::plat;

TEST(MatmulWorkload, GthvShapeMatchesFigure4) {
  const auto t = work::matmul_gthv(237);
  EXPECT_EQ(t->to_string(),
            "struct GThV_t{void* GThP; int[56169] A; int[56169] B; "
            "int[56169] C; int n}");
}

TEST(MatmulWorkload, ReferenceIsDeterministic) {
  const auto a = work::matmul_reference(12);
  const auto b = work::matmul_reference(12);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 144u);
}

class MatmulPairs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulPairs, DistributedMatchesSerial) {
  const work::PairSpec& pair = work::paper_pairs()[GetParam()];
  for (const std::uint32_t n : {5u, 16u, 33u}) {
    dsm::Cluster cluster(work::matmul_gthv(n), *pair.home,
                         {pair.remote, pair.remote});
    const auto c = work::run_matmul(cluster, n);
    EXPECT_EQ(c, work::matmul_reference(n)) << pair.name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, MatmulPairs,
                         ::testing::Values(0, 1, 2));  // LL, SS, SL

TEST(MatmulWorkload, SingleRemote) {
  dsm::Cluster cluster(work::matmul_gthv(9), plat::linux_ia32(),
                       {&plat::solaris_sparc32()});
  EXPECT_EQ(work::run_matmul(cluster, 9), work::matmul_reference(9));
}

TEST(MatmulWorkload, FourThreads) {
  dsm::Cluster cluster(
      work::matmul_gthv(17), plat::solaris_sparc32(),
      {&plat::linux_ia32(), &plat::solaris_sparc32(), &plat::linux_x86_64()});
  EXPECT_EQ(work::run_matmul(cluster, 17), work::matmul_reference(17));
}

TEST(LuWorkload, InputIsDiagonallyDominant) {
  const std::uint32_t n = 24;
  for (std::uint32_t i = 0; i < n; ++i) {
    double off_diag = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i != j) off_diag += std::abs(work::lu_input(n, i, j));
    }
    EXPECT_GT(std::abs(work::lu_input(n, i, i)), off_diag);
  }
}

TEST(LuWorkload, ReferenceReconstructsMatrix) {
  // L*U must reproduce the input (within fp roundoff).
  const std::uint32_t n = 16;
  const auto lu = work::lu_reference(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::uint32_t k = 0; k <= std::min(i, j); ++k) {
        const double l = k == i ? 1.0 : lu[i * n + k];  // unit lower
        const double u = lu[k * n + j];                 // upper
        acc += l * u;
      }
      EXPECT_NEAR(acc, work::lu_input(n, i, j), 1e-9 * n);
    }
  }
}

class LuPairs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuPairs, DistributedMatchesSerialExactly) {
  const work::PairSpec& pair = work::paper_pairs()[GetParam()];
  for (const std::uint32_t n : {4u, 13u, 24u}) {
    dsm::Cluster cluster(work::lu_gthv(n), *pair.home,
                         {pair.remote, pair.remote});
    const auto m = work::run_lu(cluster, n);
    const auto ref = work::lu_reference(n);
    ASSERT_EQ(m.size(), ref.size());
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_EQ(m[i], ref[i]) << pair.name << " n=" << n << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, LuPairs, ::testing::Values(0, 1, 2));

TEST(SorWorkload, ReferenceConvergesTowardBoundary) {
  // With a hot top edge, sustained iteration must pull interior cells up.
  const std::uint32_t n = 16;
  const auto g0 = work::sor_reference(n, 1, 1.5);
  const auto g1 = work::sor_reference(n, 50, 1.5);
  const std::uint32_t stride = n + 2;
  const std::uint64_t mid = static_cast<std::uint64_t>(n / 2) * stride + n / 2;
  EXPECT_GT(g1[mid], g0[mid]);
  EXPECT_GT(g1[mid], 0.0);
  EXPECT_LT(g1[mid], 100.0);
}

class SorPairs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SorPairs, DistributedMatchesSerialExactly) {
  const work::PairSpec& pair = work::paper_pairs()[GetParam()];
  for (const std::uint32_t n : {6u, 15u}) {
    dsm::Cluster cluster(work::sor_gthv(n), *pair.home,
                         {pair.remote, pair.remote});
    const auto grid = work::run_sor(cluster, n, 8, 1.5);
    const auto ref = work::sor_reference(n, 8, 1.5);
    ASSERT_EQ(grid.size(), ref.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(grid[i], ref[i]) << pair.name << " n=" << n << " cell " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, SorPairs, ::testing::Values(0, 1, 2));

TEST(SorWorkload, FourThreadsMixedPlatforms) {
  const std::uint32_t n = 13;
  dsm::Cluster cluster(
      work::sor_gthv(n), plat::linux_ia32(),
      {&plat::solaris_sparc32(), &plat::windows_x64(), &plat::mips64_be()});
  const auto grid = work::run_sor(cluster, n, 6, 1.25);
  const auto ref = work::sor_reference(n, 6, 1.25);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i], ref[i]) << "cell " << i;
  }
}

TEST(Experiment, MatmulHarnessVerifiesAndTimes) {
  const auto r = work::run_matmul_experiment(work::paper_pairs()[2], 20);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.pair, "SL");
  EXPECT_EQ(r.workload, "matmul");
  EXPECT_GT(r.total.share_ns(), 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  // Total equals home + both remotes.
  EXPECT_EQ(r.total.share_ns(), r.home.share_ns() + r.remote.share_ns());
}

TEST(Experiment, LuHarnessVerifies) {
  const auto r = work::run_lu_experiment(work::paper_pairs()[0], 12);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.workload, "lu");
  EXPECT_GT(r.total.barriers, 0u);
}

TEST(Experiment, HeterogeneousPairConvertsMoreThanHomogeneous) {
  // The Figure 10 shape at a small size: SL conversion work strictly
  // exceeds LL's, because LL reduces to tag-check + memcpy.
  const auto ll = work::run_matmul_experiment(work::paper_pairs()[0], 32);
  const auto sl = work::run_matmul_experiment(work::paper_pairs()[2], 32);
  ASSERT_TRUE(ll.verified);
  ASSERT_TRUE(sl.verified);
  EXPECT_EQ(ll.total.update_bytes_sent, sl.total.update_bytes_sent);
}

TEST(Experiment, PaperParameterTables) {
  EXPECT_EQ(work::paper_pairs().size(), 3u);
  EXPECT_EQ(work::paper_pairs()[0].name, "LL");
  EXPECT_EQ(work::paper_pairs()[1].name, "SS");
  EXPECT_EQ(work::paper_pairs()[2].name, "SL");
  EXPECT_EQ(work::paper_sizes(),
            (std::vector<std::uint32_t>{99, 138, 177, 216, 255}));
}
