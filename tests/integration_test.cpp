// End-to-end integration tests crossing module boundaries:
//   - the full DSD protocol over a real loopback TCP socket,
//   - MigThread migration composed with the DSD layer: a remote thread
//     yields mid-computation, its state crosses a (virtual) heterogeneity
//     boundary, and a skeleton on a different platform finishes the work,
//   - the adaptive scenario: a node joins mid-run and takes over work.
#include <gtest/gtest.h>

#include <thread>

#include "dsm/cluster.hpp"
#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "mig/roles.hpp"
#include "mig/runner.hpp"
#include "mig/thread_state.hpp"
#include "msg/tcp.hpp"
#include "workloads/experiment.hpp"

namespace dsm = hdsm::dsm;
namespace mig = hdsm::mig;
namespace msg = hdsm::msg;
namespace plat = hdsm::plat;
namespace tags = hdsm::tags;
namespace work = hdsm::work;
using tags::TypeDesc;

namespace {

tags::TypePtr counter_gthv() {
  return TypeDesc::struct_of(
      "G", {{"counters", TypeDesc::array(tags::t_int(), 32)},
            {"done", tags::t_int()}});
}

}  // namespace

TEST(Integration, DsdOverLoopbackTcp) {
  dsm::HomeNode home(counter_gthv(), plat::solaris_sparc32());
  msg::TcpListener listener(0);

  std::thread remote_thread([port = listener.port()] {
    dsm::RemoteThread remote(counter_gthv(), plat::linux_ia32(), 1,
                             msg::tcp_connect(port));
    remote.lock(0);
    auto c = remote.space().view<std::int32_t>("counters");
    for (int i = 0; i < 32; ++i) c.set(i, i * 3);
    remote.unlock(0);
    remote.barrier(0);
    remote.join();
  });

  home.attach_endpoint(1, listener.accept());
  home.start();
  home.barrier(0);
  remote_thread.join();
  home.wait_all_joined();

  auto c = home.space().view<std::int32_t>("counters");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c.get(i), i * 3);
  home.stop();
}

namespace {

tags::TypePtr worker_locals() {
  return TypeDesc::struct_of("worker_locals", {{"i", tags::t_int()},
                                               {"limit", tags::t_int()}});
}

// Increments shared counters [i, limit), one DSD lock round per element,
// with a migration point before each element.
mig::StepOutcome counting_body(mig::ThreadState& state,
                               const std::atomic<bool>& migrate,
                               dsm::RemoteThread& dsd) {
  mig::Frame& f = state.top();
  std::int32_t i = f.locals.get<std::int32_t>("i");
  const std::int32_t limit = f.locals.get<std::int32_t>("limit");
  while (i < limit) {
    if (migrate.load(std::memory_order_relaxed)) {
      f.locals.set<std::int32_t>("i", i);
      f.label = 1;
      return mig::StepOutcome::MigrationPoint;
    }
    dsd.lock(0);
    auto c = dsd.space().view<std::int32_t>("counters");
    c.set(i, c.get(i) + 1000 + i);
    dsd.unlock(0);
    ++i;
  }
  f.locals.set<std::int32_t>("i", i);
  return mig::StepOutcome::Finished;
}

}  // namespace

TEST(Integration, ThreadMigratesBetweenHeterogeneousNodesMidWork) {
  // Home + two nodes: the thread starts on a little-endian IA-32 node,
  // migrates after 10 elements to a big-endian SPARC node (iso-computing:
  // same rank resumes there), and finishes.  All 32 shared counters must
  // end up written exactly once.
  dsm::HomeNode home(counter_gthv(), plat::linux_ia32());
  home.start();

  mig::StateSchema schema;
  schema.register_frame("count", worker_locals());

  auto [mig_src, mig_dst] = msg::make_channel_pair();
  mig::RoleTracker roles(/*nodes=*/3, /*slots=*/2);
  // The worker was dispatched to node 1 at start-up (local -> stub at home,
  // skeleton -> remote at node 1).
  roles.migrate(1, 0, 1);
  std::atomic<bool> migrate{false};

  std::thread source_node([&] {
    dsm::RemoteThread dsd(counter_gthv(), plat::linux_ia32(), 1,
                          home.attach(1));
    mig::ThreadState state;
    state.rank = 1;
    state.frames.push_back(mig::Frame{
        "count", 0, mig::StructImage(worker_locals(), plat::linux_ia32())});
    state.top().locals.set<std::int32_t>("i", 0);
    state.top().locals.set<std::int32_t>("limit", 32);

    const auto body = [&dsd](mig::ThreadState& s,
                             const std::atomic<bool>& m) {
      return counting_body(s, m, dsd);
    };
    std::atomic<bool> no{false};
    // Work a while, then honor the migration request.
    while (state.top().locals.get<std::int32_t>("i") < 10) {
      dsd.lock(0);
      auto c = dsd.space().view<std::int32_t>("counters");
      const std::int32_t i = state.top().locals.get<std::int32_t>("i");
      c.set(i, c.get(i) + 1000 + i);
      dsd.unlock(0);
      state.top().locals.set<std::int32_t>(
          "i", state.top().locals.get<std::int32_t>("i") + 1);
    }
    (void)no;
    migrate.store(true);
    const auto outcome = mig::run_until_yield(body, state, migrate);
    ASSERT_EQ(outcome, mig::StepOutcome::MigrationPoint);
    // Detach from the DSD (state ships separately), then send the state.
    dsd.join();
    roles.migrate(1, 1, 2);
    mig::send_state(*mig_src, state, plat::linux_ia32());
  });

  std::thread destination_node([&] {
    // The skeleton thread: receives the state on a big-endian platform,
    // re-attaches to the home node with the same rank, and finishes.
    mig::ThreadState state =
        mig::receive_state(*mig_dst, schema, plat::solaris_sparc32());
    dsm::RemoteThread dsd(counter_gthv(), plat::solaris_sparc32(),
                          state.rank, home.attach(state.rank));
    std::atomic<bool> never{false};
    const auto body = [&dsd](mig::ThreadState& s,
                             const std::atomic<bool>& m) {
      return counting_body(s, m, dsd);
    };
    EXPECT_EQ(mig::run_until_yield(body, state, never),
              mig::StepOutcome::Finished);
    EXPECT_EQ(state.top().locals.get<std::int32_t>("i"), 32);
    dsd.join();
  });

  source_node.join();
  destination_node.join();
  home.wait_all_joined();

  EXPECT_EQ(roles.role(1, 1), mig::ThreadRole::Skeleton);
  EXPECT_EQ(roles.role(2, 1), mig::ThreadRole::Remote);
  auto c = home.space().view<std::int32_t>("counters");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(c.get(i), 1000 + i) << "counter " << i;
  }
  home.stop();
}

TEST(Integration, AdaptiveLateJoinTakesOverWork) {
  // "Parallel computing jobs can be dispatched to newly added machines":
  // the master works alone, then a new node joins mid-run and computes the
  // second half.
  tags::TypePtr gthv = counter_gthv();
  dsm::HomeNode home(gthv, plat::linux_ia32());
  home.start();

  home.lock(0);
  auto hc = home.space().view<std::int32_t>("counters");
  for (int i = 0; i < 16; ++i) hc.set(i, 5 * i);
  home.unlock(0);

  std::thread late_node([&] {
    dsm::RemoteThread dsd(gthv, plat::solaris_sparc64(), 3, home.attach(3));
    dsd.lock(0);
    auto c = dsd.space().view<std::int32_t>("counters");
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(c.get(i), 5 * i);  // sees everything done before it joined
    }
    for (int i = 16; i < 32; ++i) c.set(i, 5 * i);
    dsd.unlock(0);
    dsd.join();
  });
  late_node.join();
  home.wait_all_joined();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(hc.get(i), 5 * i);
  home.stop();
}

TEST(Integration, MatmulOverMixedTransports) {
  // Rank 1 over TCP, rank 2 over an in-process channel, heterogeneous
  // platforms everywhere; the product must still be exact.
  const std::uint32_t n = 12;
  tags::TypePtr gthv = work::matmul_gthv(n);
  dsm::HomeNode home(gthv, plat::solaris_sparc32());
  // Rank 2 attaches from its own thread, racing the master's first
  // barrier: fix both barrier counts (pthread_barrier_init semantics) so
  // membership cannot be inferred short.
  home.set_barrier_count(0, 3);
  home.set_barrier_count(1, 3);
  msg::TcpListener listener(0);

  std::thread tcp_remote([&, port = listener.port()] {
    dsm::RemoteThread remote(gthv, plat::linux_ia32(), 1,
                             msg::tcp_connect(port));
    remote.barrier(0);
    auto a = remote.space().view<std::int32_t>("A");
    auto b = remote.space().view<std::int32_t>("B");
    auto c = remote.space().view<std::int32_t>("C");
    for (std::uint32_t i = 4; i < 8; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        std::int64_t acc = 0;
        for (std::uint32_t k = 0; k < n; ++k) {
          acc += static_cast<std::int64_t>(a.get(i * n + k)) * b.get(k * n + j);
        }
        c.set(i * n + j, static_cast<std::int32_t>(acc));
      }
    }
    remote.barrier(1);
    remote.join();
  });
  home.attach_endpoint(1, listener.accept());

  std::thread chan_remote([&] {
    dsm::RemoteThread remote(gthv, plat::linux_x86_64(), 2, home.attach(2));
    remote.barrier(0);
    auto a = remote.space().view<std::int32_t>("A");
    auto b = remote.space().view<std::int32_t>("B");
    auto c = remote.space().view<std::int32_t>("C");
    for (std::uint32_t i = 8; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        std::int64_t acc = 0;
        for (std::uint32_t k = 0; k < n; ++k) {
          acc += static_cast<std::int64_t>(a.get(i * n + k)) * b.get(k * n + j);
        }
        c.set(i * n + j, static_cast<std::int32_t>(acc));
      }
    }
    remote.barrier(1);
    remote.join();
  });

  home.start();
  home.lock(0);
  auto a = home.space().view<std::int32_t>("A");
  auto b = home.space().view<std::int32_t>("B");
  for (std::uint32_t i = 0; i < n * n; ++i) {
    a.set(i, work::matmul_a(n, i));
    b.set(i, work::matmul_b(n, i));
  }
  home.unlock(0);
  home.barrier(0);
  auto c = home.space().view<std::int32_t>("C");
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::uint32_t k = 0; k < n; ++k) {
        acc += static_cast<std::int64_t>(a.get(i * n + k)) * b.get(k * n + j);
      }
      c.set(i * n + j, static_cast<std::int32_t>(acc));
    }
  }
  home.barrier(1);
  tcp_remote.join();
  chan_remote.join();
  home.wait_all_joined();

  const auto ref = work::matmul_reference(n);
  for (std::uint32_t i = 0; i < n * n; ++i) {
    EXPECT_EQ(c.get(i), ref[i]) << "elem " << i;
  }
  home.stop();
}
