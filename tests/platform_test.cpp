// Unit tests for the platform ABI models, byte-swap primitives, and the
// integer / IEEE-754 codecs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "platform/byteswap.hpp"
#include "platform/float_codec.hpp"
#include "platform/int_codec.hpp"
#include "platform/platform.hpp"

namespace plat = hdsm::plat;
using plat::Endian;
using plat::LongDoubleFormat;
using plat::ScalarKind;

TEST(PlatformPresets, LinuxIa32MatchesSysVAbi) {
  const plat::PlatformDesc& p = plat::linux_ia32();
  EXPECT_EQ(p.endian, Endian::Little);
  EXPECT_EQ(p.size_of(ScalarKind::Int), 4);
  EXPECT_EQ(p.size_of(ScalarKind::Long), 4);
  EXPECT_EQ(p.size_of(ScalarKind::Pointer), 4);
  EXPECT_EQ(p.size_of(ScalarKind::LongLong), 8);
  EXPECT_EQ(p.align_of(ScalarKind::LongLong), 4);  // IA-32 quirk
  EXPECT_EQ(p.align_of(ScalarKind::Double), 4);    // IA-32 quirk
  EXPECT_EQ(p.size_of(ScalarKind::LongDouble), 12);
  EXPECT_EQ(p.page_size, 4096u);
}

TEST(PlatformPresets, SolarisSparc32) {
  const plat::PlatformDesc& p = plat::solaris_sparc32();
  EXPECT_EQ(p.endian, Endian::Big);
  EXPECT_EQ(p.size_of(ScalarKind::Int), 4);
  EXPECT_EQ(p.size_of(ScalarKind::Pointer), 4);
  EXPECT_EQ(p.align_of(ScalarKind::Double), 8);
  EXPECT_EQ(p.size_of(ScalarKind::LongDouble), 16);
  EXPECT_EQ(p.long_double_format, LongDoubleFormat::Binary128);
  EXPECT_EQ(p.page_size, 8192u);
}

TEST(PlatformPresets, Lp64Variants) {
  EXPECT_EQ(plat::linux_x86_64().size_of(ScalarKind::Long), 8);
  EXPECT_EQ(plat::linux_x86_64().size_of(ScalarKind::Pointer), 8);
  EXPECT_EQ(plat::solaris_sparc64().size_of(ScalarKind::Long), 8);
  EXPECT_EQ(plat::solaris_sparc64().endian, Endian::Big);
}

TEST(PlatformPresets, WindowsX64IsLlp64) {
  const plat::PlatformDesc& p = plat::windows_x64();
  EXPECT_EQ(p.endian, Endian::Little);
  EXPECT_EQ(p.size_of(ScalarKind::Long), 4);     // LLP64: long is 32-bit
  EXPECT_EQ(p.size_of(ScalarKind::Pointer), 8);  // ...but pointers are 64
  EXPECT_EQ(p.size_of(ScalarKind::LongDouble), 8);
  EXPECT_EQ(p.long_double_format, LongDoubleFormat::Binary64);
  EXPECT_FALSE(p.homogeneous_with(plat::linux_x86_64()));
}

TEST(PlatformPresets, Mips64BigEndian) {
  const plat::PlatformDesc& p = plat::mips64_be();
  EXPECT_EQ(p.endian, Endian::Big);
  EXPECT_EQ(p.size_of(ScalarKind::Long), 8);
  EXPECT_EQ(p.size_of(ScalarKind::LongDouble), 16);
  EXPECT_EQ(p.long_double_format, LongDoubleFormat::Binary128);
  EXPECT_EQ(p.page_size, 16384u);
  // Same widths as SPARC64 -> structurally homogeneous to it.
  EXPECT_TRUE(p.homogeneous_with(plat::solaris_sparc64()));
}

TEST(PlatformPresets, HomogeneityIsStructural) {
  EXPECT_TRUE(plat::linux_ia32().homogeneous_with(plat::linux_ia32()));
  EXPECT_FALSE(plat::linux_ia32().homogeneous_with(plat::solaris_sparc32()));
  EXPECT_FALSE(plat::linux_ia32().homogeneous_with(plat::linux_x86_64()));
  // A renamed copy stays homogeneous.
  plat::PlatformDesc copy = plat::linux_ia32();
  copy.name = "renamed";
  EXPECT_TRUE(copy.homogeneous_with(plat::linux_ia32()));
}

TEST(PlatformPresets, LookupByName) {
  EXPECT_EQ(plat::preset_by_name("linux-ia32").name, "linux-ia32");
  EXPECT_EQ(plat::preset_by_name("solaris-sparc64").name, "solaris-sparc64");
  EXPECT_THROW(plat::preset_by_name("vax"), std::out_of_range);
}

TEST(PlatformPresets, KindPredicates) {
  EXPECT_TRUE(plat::is_signed_int(ScalarKind::Int));
  EXPECT_TRUE(plat::is_signed_int(ScalarKind::LongLong));
  EXPECT_TRUE(plat::is_unsigned_int(ScalarKind::UInt));
  EXPECT_TRUE(plat::is_unsigned_int(ScalarKind::Bool));
  EXPECT_TRUE(plat::is_floating(ScalarKind::LongDouble));
  EXPECT_FALSE(plat::is_floating(ScalarKind::Int));
  EXPECT_FALSE(plat::is_signed_int(ScalarKind::Float));
  EXPECT_STREQ(plat::scalar_kind_name(ScalarKind::ULong), "unsigned long");
}

TEST(Byteswap, Primitives) {
  EXPECT_EQ(plat::bswap16(0x1234), 0x3412);
  EXPECT_EQ(plat::bswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(plat::bswap64(0x0102030405060708ull), 0x0807060504030201ull);
  EXPECT_EQ(plat::bswap32(plat::bswap32(0xdeadbeefu)), 0xdeadbeefu);
}

TEST(Byteswap, SwapElementsInPlaceAllWidths) {
  for (const std::size_t width : {2u, 4u, 8u, 3u, 12u, 16u}) {
    std::vector<std::byte> buf(width * 5);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::byte>(i * 7 + 1);
    }
    std::vector<std::byte> orig = buf;
    plat::swap_elements_inplace(buf.data(), width, 5);
    for (std::size_t e = 0; e < 5; ++e) {
      for (std::size_t i = 0; i < width; ++i) {
        EXPECT_EQ(buf[e * width + i], orig[e * width + (width - 1 - i)]);
      }
    }
    plat::swap_elements_inplace(buf.data(), width, 5);
    EXPECT_EQ(buf, orig);
  }
}

TEST(Byteswap, Width1IsNoop) {
  std::byte b[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  plat::swap_elements_inplace(b, 1, 3);
  EXPECT_EQ(std::to_integer<int>(b[0]), 1);
  EXPECT_EQ(std::to_integer<int>(b[2]), 3);
}

// ---- integer codec ---------------------------------------------------------

struct IntCodecCase {
  std::int64_t value;
  std::size_t size;
};

class IntCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::size_t,
                                                 Endian>> {};

TEST_P(IntCodecRoundTrip, SignedRoundTrips) {
  const auto [value, size, endian] = GetParam();
  // Only test values representable at this width.
  const std::int64_t lo = size == 8 ? std::numeric_limits<std::int64_t>::min()
                                    : -(std::int64_t{1} << (size * 8 - 1));
  const std::int64_t hi =
      size == 8 ? std::numeric_limits<std::int64_t>::max()
                : (std::int64_t{1} << (size * 8 - 1)) - 1;
  if (value < lo || value > hi) GTEST_SKIP();
  std::byte buf[8];
  plat::write_sint(buf, size, endian, value);
  EXPECT_EQ(plat::read_sint(buf, size, endian), value);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntCodecRoundTrip,
    ::testing::Combine(
        ::testing::Values<std::int64_t>(0, 1, -1, 127, -128, 255, -32768,
                                        32767, 1 << 20, -(1 << 20),
                                        2147483647LL, -2147483648LL,
                                        123456789012345LL,
                                        -123456789012345LL),
        ::testing::Values<std::size_t>(1, 2, 4, 8),
        ::testing::Values(Endian::Little, Endian::Big)));

TEST(IntCodec, SignExtensionOnWidening) {
  std::byte buf[2];
  plat::write_sint(buf, 2, Endian::Big, -2);
  EXPECT_EQ(plat::read_sint(buf, 2, Endian::Big), -2);
  // Raw unsigned read sees the two's complement pattern.
  EXPECT_EQ(plat::read_uint(buf, 2, Endian::Big), 0xfffeu);
}

TEST(IntCodec, TruncationOnNarrowing) {
  std::byte buf[2];
  plat::write_sint(buf, 2, Endian::Little, 0x12345);  // truncates to 0x2345
  EXPECT_EQ(plat::read_sint(buf, 2, Endian::Little), 0x2345);
}

TEST(IntCodec, EndianBytesAreMirrored) {
  std::byte le[4], be[4];
  plat::write_uint(le, 4, Endian::Little, 0x01020304u);
  plat::write_uint(be, 4, Endian::Big, 0x01020304u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(le[i], be[3 - i]);
  EXPECT_EQ(std::to_integer<int>(be[0]), 1);
  EXPECT_EQ(std::to_integer<int>(le[0]), 4);
}

TEST(IntCodec, UnsignedFullRange) {
  std::byte buf[8];
  const std::uint64_t v = 0xfedcba9876543210ull;
  plat::write_uint(buf, 8, Endian::Big, v);
  EXPECT_EQ(plat::read_uint(buf, 8, Endian::Big), v);
  plat::write_uint(buf, 8, Endian::Little, v);
  EXPECT_EQ(plat::read_uint(buf, 8, Endian::Little), v);
}

// ---- float codec -----------------------------------------------------------

struct FloatFormatCase {
  std::size_t size;
  Endian endian;
  LongDoubleFormat ldf;
};

class FloatCodecRoundTrip : public ::testing::TestWithParam<FloatFormatCase> {
};

TEST_P(FloatCodecRoundTrip, DoublesSurviveExactly) {
  const FloatFormatCase c = GetParam();
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           3.14159265358979,
                           -2.5e-10,
                           1e100,
                           -1e-100,
                           6.02214076e23,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    if (c.size == 4) continue;  // binary32 is lossy; tested separately
    std::byte buf[16] = {};
    plat::encode_float(v, buf, c.size, c.endian, c.ldf);
    const double back = plat::decode_float(buf, c.size, c.endian, c.ldf);
    EXPECT_EQ(back, v) << "size=" << c.size;
    EXPECT_EQ(std::signbit(back), std::signbit(v));
  }
}

TEST_P(FloatCodecRoundTrip, NanSurvives) {
  const FloatFormatCase c = GetParam();
  std::byte buf[16] = {};
  plat::encode_float(std::numeric_limits<double>::quiet_NaN(), buf, c.size,
                     c.endian, c.ldf);
  EXPECT_TRUE(std::isnan(plat::decode_float(buf, c.size, c.endian, c.ldf)));
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FloatCodecRoundTrip,
    ::testing::Values(
        FloatFormatCase{8, Endian::Little, LongDoubleFormat::Binary64},
        FloatFormatCase{8, Endian::Big, LongDoubleFormat::Binary64},
        FloatFormatCase{12, Endian::Little, LongDoubleFormat::X87Extended},
        FloatFormatCase{16, Endian::Little, LongDoubleFormat::X87Extended},
        FloatFormatCase{16, Endian::Big, LongDoubleFormat::Binary128},
        FloatFormatCase{16, Endian::Little, LongDoubleFormat::Binary128}));

TEST(FloatCodec, Binary32RoundTripsFloats) {
  const float values[] = {0.0f, 1.5f, -3.25f, 1e30f, -1e-30f,
                          std::numeric_limits<float>::max()};
  for (const float v : values) {
    for (const Endian e : {Endian::Little, Endian::Big}) {
      std::byte buf[4];
      plat::encode_float(static_cast<double>(v), buf, 4, e,
                         LongDoubleFormat::Binary64);
      EXPECT_EQ(static_cast<float>(
                    plat::decode_float(buf, 4, e, LongDoubleFormat::Binary64)),
                v);
    }
  }
}

TEST(FloatCodec, Binary64BigEndianLayoutIsReversed) {
  std::byte le[8], be[8];
  plat::encode_float(1234.5678, le, 8, Endian::Little,
                     LongDoubleFormat::Binary64);
  plat::encode_float(1234.5678, be, 8, Endian::Big,
                     LongDoubleFormat::Binary64);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(le[i], be[7 - i]);
}

TEST(FloatCodec, Binary128MatchesKnownEncoding) {
  // 1.0 in binary128 big-endian: sign 0, exponent 0x3FFF, fraction 0.
  std::byte buf[16];
  plat::encode_float(1.0, buf, 16, Endian::Big, LongDoubleFormat::Binary128);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0x3f);
  EXPECT_EQ(std::to_integer<int>(buf[1]), 0xff);
  for (int i = 2; i < 16; ++i) EXPECT_EQ(std::to_integer<int>(buf[i]), 0);
}

TEST(FloatCodec, X87ExplicitIntegerBitPresent) {
  // x87 stores the leading 1 explicitly: for 1.0 the mantissa's top bit is
  // set.  Little-endian layout: mantissa bytes 0..7, sign+exp bytes 8..9.
  std::byte buf[12] = {};
  plat::encode_float(1.0, buf, 12, Endian::Little,
                     LongDoubleFormat::X87Extended);
  EXPECT_EQ(std::to_integer<int>(buf[7]), 0x80);
  EXPECT_EQ(std::to_integer<int>(buf[8]), 0xff);
  EXPECT_EQ(std::to_integer<int>(buf[9]), 0x3f);
}

TEST(FloatCodec, SubnormalDoublesRoundTripThroughWideFormats) {
  const double tiny = std::numeric_limits<double>::denorm_min() * 371;
  for (const auto ldf :
       {LongDoubleFormat::X87Extended, LongDoubleFormat::Binary128}) {
    std::byte buf[16] = {};
    plat::encode_float(tiny, buf, 16, Endian::Little, ldf);
    EXPECT_EQ(plat::decode_float(buf, 16, Endian::Little, ldf), tiny);
  }
}

TEST(FloatCodec, RandomDoublesPropertySweep) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint64_t bits = rng();
    double v;
    std::memcpy(&v, &bits, 8);
    if (std::isnan(v)) continue;
    for (const FloatFormatCase c :
         {FloatFormatCase{8, Endian::Big, LongDoubleFormat::Binary64},
          FloatFormatCase{12, Endian::Little, LongDoubleFormat::X87Extended},
          FloatFormatCase{16, Endian::Big, LongDoubleFormat::Binary128}}) {
      std::byte buf[16] = {};
      plat::encode_float(v, buf, c.size, c.endian, c.ldf);
      EXPECT_EQ(plat::decode_float(buf, c.size, c.endian, c.ldf), v);
    }
  }
}

TEST(FloatCodec, RejectsBadSizes) {
  std::byte buf[16] = {};
  EXPECT_THROW(plat::encode_float(1.0, buf, 7, Endian::Little,
                                  LongDoubleFormat::Binary64),
               std::invalid_argument);
  EXPECT_THROW(
      plat::decode_float(buf, 3, Endian::Little, LongDoubleFormat::Binary64),
      std::invalid_argument);
}
