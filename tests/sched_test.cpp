// Tests for the adaptation scheduler: threshold policy, hysteresis, node
// join/leave, and full rebalance loops over the role map.
#include <gtest/gtest.h>

#include "sched/policy.hpp"

namespace sched = hdsm::sched;
namespace mig = hdsm::mig;
using mig::ThreadRole;

TEST(LoadModel, SumsExternalAndThreadLoad) {
  mig::RoleTracker roles(2, 3);  // node0: master + 2 locals; node1: skeletons
  sched::LoadModel model({0.1, 0.2}, 0.3);
  EXPECT_DOUBLE_EQ(model(roles, 0), 0.1 + 3 * 0.3);
  EXPECT_DOUBLE_EQ(model(roles, 1), 0.2);
  roles.migrate(1, 0, 1);
  EXPECT_DOUBLE_EQ(model(roles, 0), 0.1 + 2 * 0.3);
  EXPECT_DOUBLE_EQ(model(roles, 1), 0.2 + 0.3);
}

TEST(Policy, ShedsFromOverloadedToIdle) {
  mig::RoleTracker roles(2, 3);
  sched::AdaptationPolicy policy;
  const auto d = policy.decide(roles, {0.9, 0.1});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, 0u);
  EXPECT_EQ(d->dst, 1u);
  EXPECT_GE(d->slot, 1u);  // the master never moves
}

TEST(Policy, BalancedSystemProposesNothing) {
  mig::RoleTracker roles(2, 3);
  sched::AdaptationPolicy policy;
  EXPECT_FALSE(policy.decide(roles, {0.5, 0.5}).has_value());
  EXPECT_FALSE(policy.decide(roles, {0.6, 0.6}).has_value());
}

TEST(Policy, HysteresisPreventsMarginalMoves) {
  mig::RoleTracker roles(2, 3);
  sched::PolicyConfig cfg;
  cfg.overload_threshold = 0.7;
  cfg.underload_threshold = 0.65;
  cfg.min_imbalance = 0.25;
  sched::AdaptationPolicy policy(cfg);
  // Overloaded source, eligible destination, but the gap is too small.
  EXPECT_FALSE(policy.decide(roles, {0.8, 0.6}).has_value());
  EXPECT_TRUE(policy.decide(roles, {0.9, 0.1}).has_value());
}

TEST(Policy, NoMovableThreadMeansNoDecision) {
  mig::RoleTracker roles(2, 2);
  roles.migrate(1, 0, 1);  // only slave now computes on node 1
  sched::AdaptationPolicy policy;
  // Node 0 hosts master (immovable) + stub: overload cannot be shed.
  EXPECT_FALSE(policy.decide(roles, {0.95, 0.1}).has_value());
}

TEST(Policy, DestinationSlotMustBeFree) {
  mig::RoleTracker roles(3, 2);
  roles.migrate(1, 0, 1);  // slot 1 computes on node 1
  sched::AdaptationPolicy policy;
  // Node 1 overloaded; node 2's slot 1 is a skeleton -> legal.
  const auto d = policy.decide(roles, {0.1, 0.9, 0.05});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, 1u);
  EXPECT_EQ(d->dst, 2u);
  EXPECT_EQ(d->slot, 1u);
}

TEST(Policy, DepartedNodesExcluded) {
  mig::RoleTracker roles(3, 2);
  roles.remove_node(2);
  sched::AdaptationPolicy policy;
  const auto d = policy.decide(roles, {0.9, 0.1, 0.0});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->dst, 1u);  // node 2 would be cheaper but it left
}

TEST(Policy, LoadVectorSizeValidated) {
  mig::RoleTracker roles(2, 2);
  sched::AdaptationPolicy policy;
  EXPECT_THROW(policy.decide(roles, {0.5}), std::invalid_argument);
}

TEST(Policy, RebalanceConvergesToFixpoint) {
  // Home node with 4 slave threads; two idle machines join.
  mig::RoleTracker roles(1, 5);
  sched::LoadModel model({0.1}, 0.22);  // 0.1 + 5*0.22 = 1.2: overloaded
  roles.add_node();
  model.add_node(0.05);
  roles.add_node();
  model.add_node(0.0);

  sched::AdaptationPolicy policy;
  const auto moves = policy.rebalance(roles, model);
  EXPECT_FALSE(moves.empty());

  // Fixpoint: no further decision.
  std::vector<double> loads(roles.num_nodes());
  for (std::size_t n = 0; n < roles.num_nodes(); ++n) {
    loads[n] = model(roles, n);
  }
  EXPECT_FALSE(policy.decide(roles, loads).has_value());
  // The joiners actually received work.
  std::size_t computing_elsewhere = 0;
  for (std::size_t n = 1; n < roles.num_nodes(); ++n) {
    for (std::size_t s = 0; s < roles.num_slots(); ++s) {
      if (roles.role(n, s) == ThreadRole::Remote) ++computing_elsewhere;
    }
  }
  EXPECT_GE(computing_elsewhere, 2u);
}

TEST(Policy, OverloadedRemoteMigratesAgain) {
  // "Threads can migrate again if the hosting node is overloaded."
  mig::RoleTracker roles(3, 2);
  roles.migrate(1, 0, 1);
  sched::AdaptationPolicy policy;
  const auto d = policy.decide(roles, {0.2, 0.95, 0.1});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, 1u);
  EXPECT_EQ(d->dst, 2u);
  roles.migrate(d->slot, d->src, d->dst);
  EXPECT_EQ(roles.role(1, 1), ThreadRole::Skeleton);
  EXPECT_EQ(roles.role(2, 1), ThreadRole::Remote);
}

TEST(Roles, AddAndRemoveNodes) {
  mig::RoleTracker roles(2, 2);
  const std::size_t n = roles.add_node();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(roles.role(n, 0), ThreadRole::Skeleton);
  EXPECT_TRUE(roles.node_active(n));

  roles.migrate(1, 0, n);
  // A node running a thread cannot leave.
  EXPECT_THROW(roles.remove_node(n), std::logic_error);
  roles.migrate(1, n, 1);
  roles.remove_node(n);
  EXPECT_FALSE(roles.node_active(n));
  // And nothing migrates onto a departed node.
  EXPECT_THROW(roles.migrate(1, 1, n), std::logic_error);
  // The home node never leaves.
  EXPECT_THROW(roles.remove_node(0), std::logic_error);
}

// ---- measured-load bridge + incremental rebalance ---------------------------

TEST(LoadModel, MeasuredBusyFractionReplacesTheSyntheticLoad) {
  sched::LoadModel model({0.9, 0.3}, 0.1);

  // Busy time straight from a node's ShareStats: share_ns() over the wall
  // window, i.e. the Eq.-1 data-sharing cost as a busy fraction.
  hdsm::dsm::ShareStats stats;
  stats.index_ns = 200;
  stats.pack_ns = 100;
  stats.conv_ns = 100;
  model.set_measured(0, stats, /*wall_ns=*/1000);
  EXPECT_DOUBLE_EQ(model.external(0), 0.4);

  // A zero-length window carries no information: load reads 0.
  model.set_measured(1, 500, 0);
  EXPECT_DOUBLE_EQ(model.external(1), 0.0);
  // Parallel lanes can make busy exceed wall: clamped to 1.
  model.set_measured(1, 3000, 1000);
  EXPECT_DOUBLE_EQ(model.external(1), 1.0);
}

TEST(Policy, IncrementalRebalanceMatchesTheGenericPath) {
  // The LoadModel overload computes the load vector once and adjusts it by
  // per_thread_cost per move; it must take exactly the moves the generic
  // recompute-everything path takes.
  const auto build = [](mig::RoleTracker& roles, sched::LoadModel& model) {
    roles.add_node();
    model.add_node(0.05);
    roles.add_node();
    model.add_node(0.0);
  };
  mig::RoleTracker r1(1, 5), r2(1, 5);
  sched::LoadModel m1({0.1}, 0.22), m2({0.1}, 0.22);
  build(r1, m1);
  build(r2, m2);

  sched::AdaptationPolicy policy;
  const auto generic = policy.rebalance(
      r1, [&](const mig::RoleTracker& roles, std::size_t n) {
        return m1(roles, n);
      });
  const auto incremental = policy.rebalance(r2, m2);
  EXPECT_EQ(generic, incremental);
  EXPECT_FALSE(incremental.empty());
}
