// Tests for the region / write-trap / twin-diff substrate: genuine
// mprotect + SIGSEGV write detection, twin integrity, concurrent faulting,
// and the diff engine's byte-exact range computation.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>

#include "memory/diff.hpp"
#include "memory/region.hpp"
#include "memory/write_trap.hpp"

namespace mem = hdsm::mem;

// ---- Region ----------------------------------------------------------------

TEST(Region, RoundsUpToPages) {
  mem::Region r(100);
  EXPECT_EQ(r.requested(), 100u);
  EXPECT_EQ(r.length(), mem::Region::host_page_size());
  EXPECT_EQ(r.page_count(), 1u);
  mem::Region r2(mem::Region::host_page_size() + 1);
  EXPECT_EQ(r2.page_count(), 2u);
}

TEST(Region, ZeroLengthRejected) {
  EXPECT_THROW(mem::Region r(0), std::invalid_argument);
}

TEST(Region, ContainsAndPageOf) {
  mem::Region r(3 * mem::Region::host_page_size());
  EXPECT_TRUE(r.contains(r.data()));
  EXPECT_TRUE(r.contains(r.data() + r.length() - 1));
  EXPECT_FALSE(r.contains(r.data() + r.length()));
  EXPECT_EQ(r.page_of(0), 0u);
  EXPECT_EQ(r.page_of(mem::Region::host_page_size()), 1u);
}

TEST(Region, MoveTransfersOwnership) {
  mem::Region a(64);
  std::byte* p = a.data();
  mem::Region b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(Region, WritableByDefault) {
  mem::Region r(256);
  std::memset(r.data(), 0x5A, 256);
  EXPECT_EQ(std::to_integer<int>(r.data()[255]), 0x5A);
}

// ---- TrackedRegion ---------------------------------------------------------

TEST(TrackedRegion, FirstWriteFaultsOncePerPage) {
  const std::size_t ps = mem::Region::host_page_size();
  mem::TrackedRegion r(4 * ps);
  r.begin_tracking();
  EXPECT_EQ(r.fault_count(), 0u);
  r.data()[0] = std::byte{1};
  EXPECT_EQ(r.fault_count(), 1u);
  r.data()[1] = std::byte{2};  // same page: no new fault
  EXPECT_EQ(r.fault_count(), 1u);
  r.data()[2 * ps] = std::byte{3};  // third page
  EXPECT_EQ(r.fault_count(), 2u);
  r.end_tracking();
  const std::vector<std::size_t> dirty = r.dirty_pages();
  EXPECT_EQ(dirty, (std::vector<std::size_t>{0, 2}));
}

TEST(TrackedRegion, TwinHoldsPreWriteContent) {
  const std::size_t ps = mem::Region::host_page_size();
  mem::TrackedRegion r(ps);
  std::memset(r.data(), 0x11, ps);
  r.begin_tracking();
  r.data()[7] = std::byte{0x99};
  r.end_tracking();
  ASSERT_TRUE(r.page_dirty(0));
  EXPECT_EQ(std::to_integer<int>(r.twin_page(0)[7]), 0x11);
  EXPECT_EQ(std::to_integer<int>(r.data()[7]), 0x99);
  // Untouched bytes agree between twin and data.
  EXPECT_EQ(std::memcmp(r.twin_page(0) + 8, r.data() + 8, ps - 8), 0);
}

TEST(TrackedRegion, ReadsNeverFault) {
  mem::TrackedRegion r(1024);
  std::memset(r.data(), 0x42, 1024);
  r.begin_tracking();
  int sum = 0;
  for (int i = 0; i < 1024; ++i) sum += std::to_integer<int>(r.data()[i]);
  EXPECT_EQ(sum, 0x42 * 1024);
  EXPECT_EQ(r.fault_count(), 0u);
  EXPECT_TRUE(r.dirty_pages().empty());
  r.end_tracking();
}

TEST(TrackedRegion, ClearDirtyResets) {
  mem::TrackedRegion r(256);
  r.begin_tracking();
  r.data()[0] = std::byte{1};
  r.end_tracking();
  EXPECT_FALSE(r.dirty_pages().empty());
  r.clear_dirty();
  EXPECT_TRUE(r.dirty_pages().empty());
  EXPECT_EQ(r.fault_count(), 0u);
}

TEST(TrackedRegion, RetrackingAfterEndWorks) {
  mem::TrackedRegion r(256);
  for (int round = 0; round < 5; ++round) {
    r.begin_tracking();
    r.data()[round] = static_cast<std::byte>(round + 1);
    EXPECT_EQ(r.fault_count(), 1u) << round;
    r.end_tracking();
    EXPECT_EQ(r.dirty_pages().size(), 1u);
  }
}

TEST(TrackedRegion, ApplyUpdateIsInvisibleToDiff) {
  const std::size_t ps = mem::Region::host_page_size();
  mem::TrackedRegion r(ps);
  r.begin_tracking();
  // Local write first: page twinned.
  r.data()[0] = std::byte{1};
  // Incoming DSM update elsewhere on the page.
  const std::byte upd[2] = {std::byte{0xAB}, std::byte{0xCD}};
  r.apply_update(100, upd, 2);
  r.end_tracking();
  std::vector<mem::ByteRange> ranges;
  mem::diff_bytes(r.data(), r.twin_page(0), ps, 0, ranges);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (mem::ByteRange{0, 1}));  // only the local write
  EXPECT_EQ(std::to_integer<int>(r.data()[100]), 0xAB);
}

TEST(TrackedRegion, ApplyUpdateOnCleanProtectedPage) {
  const std::size_t ps = mem::Region::host_page_size();
  mem::TrackedRegion r(2 * ps);
  r.begin_tracking();
  const std::byte upd[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                            std::byte{4}};
  // Applied through the alias view: lands without tripping the trap and
  // without dirtying the page.
  r.apply_update(ps + 8, upd, 4);
  EXPECT_FALSE(r.page_dirty(1));
  EXPECT_EQ(std::to_integer<int>(r.data()[ps + 8]), 1);
  // A subsequent application write twins the *post-update* content, so the
  // diff reports only the application write.
  r.data()[ps + 100] = std::byte{0x55};
  ASSERT_TRUE(r.page_dirty(1));
  std::vector<mem::ByteRange> ranges;
  mem::diff_bytes(r.data() + ps, r.twin_page(1), ps, ps, ranges);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (mem::ByteRange{ps + 100, ps + 101}));
  r.end_tracking();
}

TEST(TrackedRegion, ApplyUpdateBoundsChecked) {
  mem::TrackedRegion r(128);
  const std::byte b{0};
  EXPECT_THROW(r.apply_update(r.length(), &b, 1), std::out_of_range);
}

TEST(TrackedRegion, ConcurrentWritersAllPagesTwinnedCorrectly) {
  const std::size_t ps = mem::Region::host_page_size();
  const std::size_t pages = 8;
  mem::TrackedRegion r(pages * ps);
  std::memset(r.data(), 0x33, pages * ps);
  r.begin_tracking();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&r, t, ps] {
      // All threads hammer all pages concurrently.
      for (std::size_t p = 0; p < pages; ++p) {
        for (int i = 0; i < 64; ++i) {
          r.data()[p * ps + t * 64 + i] = static_cast<std::byte>(t + 1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  r.end_tracking();
  EXPECT_EQ(r.dirty_pages().size(), pages);
  for (std::size_t p = 0; p < pages; ++p) {
    // Twin is the pristine pre-write page regardless of race winners.
    for (std::size_t i = 0; i < ps; ++i) {
      ASSERT_EQ(std::to_integer<int>(r.twin_page(p)[i]), 0x33);
    }
  }
}

TEST(TrackedRegion, ManyRegionsIndependent) {
  mem::TrackedRegion a(256), b(256);
  a.begin_tracking();
  b.begin_tracking();
  a.data()[0] = std::byte{1};
  EXPECT_EQ(a.fault_count(), 1u);
  EXPECT_EQ(b.fault_count(), 0u);
  b.data()[10] = std::byte{2};
  EXPECT_EQ(b.fault_count(), 1u);
  a.end_tracking();
  b.end_tracking();
  EXPECT_EQ(a.dirty_pages().size(), 1u);
  EXPECT_EQ(b.dirty_pages().size(), 1u);
}

TEST(TrackedRegion, RegistryTracksLifetime) {
  const std::size_t before = mem::trap_internal::registered_count();
  {
    mem::TrackedRegion r(64);
    EXPECT_EQ(mem::trap_internal::registered_count(), before + 1);
  }
  EXPECT_EQ(mem::trap_internal::registered_count(), before);
}

// ---- diff engine -----------------------------------------------------------

TEST(Diff, IdenticalBuffersNoRanges) {
  std::vector<std::byte> a(1000, std::byte{7}), b(1000, std::byte{7});
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 1000, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(Diff, SingleByteChange) {
  std::vector<std::byte> a(1000), b(1000);
  a[537] = std::byte{1};
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 1000, 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (mem::ByteRange{537, 538}));
}

TEST(Diff, RangesAreByteExact) {
  std::vector<std::byte> a(256), b(256);
  for (int i = 40; i < 60; ++i) a[i] = std::byte{1};
  for (int i = 61; i < 64; ++i) a[i] = std::byte{2};
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 256, 0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (mem::ByteRange{40, 60}));
  EXPECT_EQ(out[1], (mem::ByteRange{61, 64}));
}

TEST(Diff, MergeSlackJoinsNearbyRanges) {
  std::vector<std::byte> a(256), b(256);
  a[10] = std::byte{1};
  a[13] = std::byte{1};  // gap of 2
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 256, 0, out, /*merge_slack=*/2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (mem::ByteRange{10, 14}));
}

TEST(Diff, BaseOffsetApplied) {
  std::vector<std::byte> a(64), b(64);
  a[5] = std::byte{9};
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 64, 4096, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (mem::ByteRange{4101, 4102}));
}

TEST(Diff, ChangesAtBufferEdges) {
  std::vector<std::byte> a(128), b(128);
  a[0] = std::byte{1};
  a[127] = std::byte{1};
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 128, 0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (mem::ByteRange{0, 1}));
  EXPECT_EQ(out[1], (mem::ByteRange{127, 128}));
}

TEST(Diff, UnalignedLengths) {
  for (const std::size_t len : {1u, 3u, 7u, 9u, 15u, 63u, 65u}) {
    std::vector<std::byte> a(len), b(len);
    a[len - 1] = std::byte{1};
    std::vector<mem::ByteRange> out;
    mem::diff_bytes(a.data(), b.data(), len, 0, out);
    ASSERT_EQ(out.size(), 1u) << len;
    EXPECT_EQ(out[0], (mem::ByteRange{len - 1, len}));
  }
}

TEST(Diff, RandomPropertyRangesReconstructChanges) {
  std::mt19937_64 rng(4242);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = 1 + rng() % 5000;
    std::vector<std::byte> twin(len), cur(len);
    for (std::size_t i = 0; i < len; ++i) {
      twin[i] = static_cast<std::byte>(rng());
    }
    cur = twin;
    std::vector<bool> changed(len, false);
    const std::size_t nmods = rng() % 20;
    for (std::size_t m = 0; m < nmods; ++m) {
      const std::size_t pos = rng() % len;
      const std::byte nv = static_cast<std::byte>(rng());
      if (nv != twin[pos]) {
        cur[pos] = nv;
        changed[pos] = true;
      }
    }
    std::vector<mem::ByteRange> out;
    mem::diff_bytes(cur.data(), twin.data(), len, 0, out);
    // Every reported byte really differs; every differing byte is reported.
    std::vector<bool> reported(len, false);
    for (const mem::ByteRange& r : out) {
      ASSERT_LE(r.begin, r.end);
      ASSERT_LE(r.end, len);
      for (std::size_t i = r.begin; i < r.end; ++i) reported[i] = true;
    }
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(reported[i], changed[i]) << "iter " << iter << " byte " << i;
    }
  }
}

TEST(Diff, CrossPageMergeSlackJoinsAcrossCalls) {
  // Successive calls model successive pages: a change ending at the tail
  // of page 0 and one at the head of page 1 merge when the gap is within
  // the slack — the documented cross-page contract of diff_bytes.
  std::vector<std::byte> p0(16), t0(16), p1(16), t1(16);
  p0[14] = std::byte{1};
  p0[15] = std::byte{1};
  p1[1] = std::byte{1};  // gap of one unchanged byte (offset 16)
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(p0.data(), t0.data(), 16, 0, out, /*merge_slack=*/2);
  mem::diff_bytes(p1.data(), t1.data(), 16, 16, out, /*merge_slack=*/2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (mem::ByteRange{14, 18}));

  // Without slack, exactly-contiguous cross-page changes still merge.
  std::vector<std::byte> q0(16), q1(16);
  q0[15] = std::byte{2};
  q1[0] = std::byte{2};
  std::vector<mem::ByteRange> out2;
  mem::diff_bytes(q0.data(), t0.data(), 16, 0, out2);
  mem::diff_bytes(q1.data(), t1.data(), 16, 16, out2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0], (mem::ByteRange{15, 17}));
}

TEST(Diff, FinalPartialPageWindow) {
  // The last page of a region is typically a short window; a change in
  // its final byte must be reported against the right absolute offset.
  std::vector<std::byte> full(32), twin_full(32), part(5), twin_part(5);
  full[3] = std::byte{1};
  part[4] = std::byte{1};
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(full.data(), twin_full.data(), 32, 0, out);
  mem::diff_bytes(part.data(), twin_part.data(), 5, 32, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (mem::ByteRange{3, 4}));
  EXPECT_EQ(out[1], (mem::ByteRange{36, 37}));
}

TEST(Diff, OutOfOrderWindowsRejected) {
  // The in-place back-merge assumes ascending windows; calling with a
  // window that starts before the last recorded range must throw rather
  // than corrupt the range list.
  std::vector<std::byte> a(16), b(16);
  a[2] = std::byte{1};
  std::vector<mem::ByteRange> out;
  mem::diff_bytes(a.data(), b.data(), 16, 64, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_THROW(mem::diff_bytes(a.data(), b.data(), 16, 0, out),
               std::invalid_argument);
  // The range list is untouched by the rejected call.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (mem::ByteRange{66, 67}));
}

TEST(Diff, CoalesceRanges) {
  std::vector<mem::ByteRange> r = {{0, 4}, {4, 8}, {10, 12}, {13, 20}};
  mem::coalesce_ranges(r, 0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (mem::ByteRange{0, 8}));
  mem::coalesce_ranges(r, 1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1], (mem::ByteRange{10, 20}));
  EXPECT_EQ(mem::total_bytes(r), 18u);
}
