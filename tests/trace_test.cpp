// Tests for the protocol trace log and validator, including end-to-end
// traces captured from live lock/barrier/join traffic.
#include <gtest/gtest.h>

#include <thread>

#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "dsm/trace.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
using dsm::TraceEvent;
using Kind = dsm::TraceEvent::Kind;

namespace {

tags::TypePtr gthv() {
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_int(), 32)}});
}

std::vector<TraceEvent> make_events(
    std::initializer_list<std::tuple<Kind, std::uint32_t, std::uint32_t>>
        list) {
  std::vector<TraceEvent> out;
  std::uint64_t seq = 1;
  for (const auto& [kind, rank, sync] : list) {
    TraceEvent e;
    e.seq = seq++;
    e.kind = kind;
    e.rank = rank;
    e.sync_id = sync;
    out.push_back(e);
  }
  return out;
}

}  // namespace

TEST(TraceLog, AppendsWithMonotonicSeq) {
  dsm::TraceLog log;
  log.append(Kind::LockGranted, 1, 0);
  log.append(Kind::LockReleased, 1, 0, 3, 120);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].blocks, 3u);
  EXPECT_EQ(events[1].bytes, 120u);
  EXPECT_EQ(log.size(), 2u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLog, RendersReadably) {
  dsm::TraceLog log;
  log.append(Kind::BarrierEntered, 2, 5);
  log.append(Kind::UpdatesShipped, 2, 5, 7, 999);
  const std::string s = log.to_string();
  EXPECT_NE(s.find("#1 BarrierEntered rank=2 sync=5"), std::string::npos);
  EXPECT_NE(s.find("blocks=7 bytes=999"), std::string::npos);
}

TEST(Validator, CleanLockSequencePasses) {
  const auto events = make_events({{Kind::LockRequested, 1, 0},
                                   {Kind::LockGranted, 1, 0},
                                   {Kind::LockReleased, 1, 0},
                                   {Kind::LockGranted, 2, 0},
                                   {Kind::LockReleased, 2, 0}});
  EXPECT_FALSE(dsm::validate_trace(events).has_value());
}

TEST(Validator, DoubleGrantCaught) {
  const auto events = make_events({{Kind::LockGranted, 1, 0},
                                   {Kind::LockGranted, 2, 0}});
  const auto err = dsm::validate_trace(events);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("granted while held"), std::string::npos);
}

TEST(Validator, ReleaseByNonHolderCaught) {
  const auto events = make_events({{Kind::LockGranted, 1, 0},
                                   {Kind::LockReleased, 2, 0}});
  ASSERT_TRUE(dsm::validate_trace(events).has_value());
}

TEST(Validator, ReleaseWhileFreeCaught) {
  const auto events = make_events({{Kind::LockReleased, 1, 0}});
  ASSERT_TRUE(dsm::validate_trace(events).has_value());
}

TEST(Validator, IndependentMutexesDoNotInterfere) {
  const auto events = make_events({{Kind::LockGranted, 1, 0},
                                   {Kind::LockGranted, 2, 1},
                                   {Kind::LockReleased, 2, 1},
                                   {Kind::LockReleased, 1, 0}});
  EXPECT_FALSE(dsm::validate_trace(events).has_value());
}

TEST(Validator, BarrierEpisodeRules) {
  // Clean episode.
  auto ok = make_events({{Kind::BarrierEntered, 0, 0},
                         {Kind::BarrierEntered, 1, 0},
                         {Kind::BarrierReleased, 0, 0},
                         {Kind::BarrierEntered, 1, 0},  // next episode
                         {Kind::BarrierEntered, 0, 0},
                         {Kind::BarrierReleased, 0, 0}});
  EXPECT_FALSE(dsm::validate_trace(ok).has_value());

  // Double entry in one episode.
  auto dup = make_events({{Kind::BarrierEntered, 1, 0},
                          {Kind::BarrierEntered, 1, 0}});
  ASSERT_TRUE(dsm::validate_trace(dup).has_value());

  // Release without the master.
  auto no_master = make_events({{Kind::BarrierEntered, 1, 0},
                                {Kind::BarrierReleased, 0, 0}});
  ASSERT_TRUE(dsm::validate_trace(no_master).has_value());

  // Release of an empty episode.
  auto empty = make_events({{Kind::BarrierReleased, 0, 0}});
  ASSERT_TRUE(dsm::validate_trace(empty).has_value());
}

TEST(Validator, ActivityAfterJoinCaught) {
  const auto events = make_events({{Kind::Joined, 1, 0},
                                   {Kind::LockRequested, 1, 0}});
  const auto err = dsm::validate_trace(events);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("joined/detached"), std::string::npos);
}

TEST(Validator, ReattachClearsGoneState) {
  const auto events = make_events({{Kind::Attached, 1, 0},
                                   {Kind::Joined, 1, 0},
                                   {Kind::Attached, 1, 0},
                                   {Kind::LockGranted, 1, 0},
                                   {Kind::LockReleased, 1, 0}});
  EXPECT_FALSE(dsm::validate_trace(events).has_value());
}

TEST(Validator, RetryStormValidates) {
  // A lossy network: the request is retransmitted three times, the home
  // drops two late copies and re-sends its reply once.  All of that is
  // legitimate reliability bookkeeping — the episode must validate.
  const auto events = make_events({{Kind::Attached, 1, 0},
                                   {Kind::LockRequested, 1, 0},
                                   {Kind::RetrySent, 1, 0},
                                   {Kind::RetrySent, 1, 0},
                                   {Kind::RetrySent, 1, 0},
                                   {Kind::DuplicateDropped, 1, 0},
                                   {Kind::DuplicateDropped, 1, 0},
                                   {Kind::LockGranted, 1, 0},
                                   {Kind::ReplyResent, 1, 0},
                                   {Kind::LockReleased, 1, 0},
                                   {Kind::Joined, 1, 0},
                                   // Straggler retransmits arriving after the
                                   // join are still only bookkeeping.
                                   {Kind::DuplicateDropped, 1, 0},
                                   {Kind::ReplyResent, 1, 0}});
  EXPECT_FALSE(dsm::validate_trace(events).has_value());
}

TEST(Validator, DuplicateApplicationCaught) {
  // Idempotency invariant: the same sequenced request must never be applied
  // twice.  Forge a trace where request #5 lands two UpdatesApplied events.
  auto events = make_events({{Kind::UpdatesApplied, 1, 0},
                             {Kind::UpdatesApplied, 1, 0}});
  events[0].req = 5;
  events[1].req = 5;
  const auto err = dsm::validate_trace(events);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("applied twice"), std::string::npos);

  // A lower req after a higher one is equally a replay.
  events[1].req = 4;
  ASSERT_TRUE(dsm::validate_trace(events).has_value());

  // Unsequenced (req=0) events are exempt — legacy traffic carries no seq.
  events[0].req = 0;
  events[1].req = 0;
  EXPECT_FALSE(dsm::validate_trace(events).has_value());
}

TEST(Validator, TimeoutDetachEpisodeRules) {
  // A remote that times out while holding a mutex: TimeoutDetached marks it
  // gone and implicitly releases its mutexes (home-side reclamation), so a
  // later grant to another rank is clean...
  const auto ok = make_events({{Kind::LockGranted, 1, 0},
                               {Kind::TimeoutDetached, 1, 0},
                               {Kind::LockGranted, 2, 0},
                               {Kind::LockReleased, 2, 0}});
  EXPECT_FALSE(dsm::validate_trace(ok).has_value());

  // ...but real protocol activity from the detached rank is a violation.
  const auto bad = make_events({{Kind::TimeoutDetached, 1, 0},
                                {Kind::LockRequested, 1, 0}});
  const auto err = dsm::validate_trace(bad);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("joined/detached"), std::string::npos);
}

TEST(Validator, ReattachResetsIdempotencyHorizon) {
  // A new incarnation of a rank restarts request numbering at #1; after an
  // Attached event the lower req is not a replay.
  auto events = make_events({{Kind::UpdatesApplied, 1, 0},
                             {Kind::Joined, 1, 0},
                             {Kind::Attached, 1, 0},
                             {Kind::UpdatesApplied, 1, 0}});
  events[0].req = 3;
  events[3].req = 1;
  EXPECT_FALSE(dsm::validate_trace(events).has_value());

  // Without the re-attach the same pair fails.
  auto replay = make_events({{Kind::UpdatesApplied, 1, 0},
                             {Kind::UpdatesApplied, 1, 0}});
  replay[0].req = 3;
  replay[1].req = 1;
  EXPECT_TRUE(dsm::validate_trace(replay).has_value());
}

TEST(TraceLog, RendersReqWhenSequenced) {
  dsm::TraceLog log;
  log.append(Kind::UpdatesApplied, 1, 0, 2, 64, 9);
  log.append(Kind::RetrySent, 1, 0, 0, 0, 9);
  const std::string s = log.to_string();
  EXPECT_NE(s.find("UpdatesApplied rank=1 sync=0 blocks=2 bytes=64 req=9"),
            std::string::npos);
  EXPECT_NE(s.find("RetrySent rank=1 sync=0 req=9"), std::string::npos);
}

TEST(TraceEndToEnd, LiveLockTrafficValidates) {
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::solaris_sparc32(), opts);
  msg::EndpointPtr e1 = home.attach(1);
  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r1(gthv(), plat::linux_ia32(), 1, std::move(e1));
  dsm::RemoteThread r2(gthv(), plat::linux_ia32(), 2, std::move(e2));
  home.start();

  std::thread t1([&] {
    for (int i = 0; i < 10; ++i) {
      r1.lock(0);
      auto a = r1.space().view<std::int32_t>("A");
      a.set(0, a.get(0) + 1);
      r1.unlock(0);
    }
    r1.barrier(0);
    r1.join();
  });
  std::thread t2([&] {
    for (int i = 0; i < 10; ++i) {
      r2.lock(1);
      auto a = r2.space().view<std::int32_t>("A");
      a.set(1, a.get(1) + 1);
      r2.unlock(1);
    }
    r2.barrier(0);
    r2.join();
  });
  home.barrier(0);
  t1.join();
  t2.join();
  home.wait_all_joined();
  home.stop();

  const auto events = log.snapshot();
  EXPECT_GT(events.size(), 40u);
  const auto err = dsm::validate_trace(events);
  EXPECT_FALSE(err.has_value()) << *err << "\n" << log.to_string();

  // The expected event mix is present.
  std::size_t grants = 0, joins = 0, barrier_releases = 0;
  for (const TraceEvent& e : events) {
    grants += e.kind == Kind::LockGranted;
    joins += e.kind == Kind::Joined;
    barrier_releases += e.kind == Kind::BarrierReleased;
  }
  EXPECT_EQ(grants, 20u);
  EXPECT_EQ(joins, 2u);
  EXPECT_EQ(barrier_releases, 1u);
}

TEST(TraceEndToEnd, TamperedTraceFails) {
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.trace = &log;
  dsm::HomeNode home(gthv(), plat::linux_ia32(), opts);
  home.start();
  home.lock(0);
  home.unlock(0);
  home.stop();
  auto events = log.snapshot();
  ASSERT_FALSE(dsm::validate_trace(events).has_value());
  // Drop the release: the next grant (appended manually) must now fail.
  TraceEvent grant;
  grant.seq = events.back().seq + 1;
  grant.kind = Kind::LockGranted;
  grant.rank = 7;
  grant.sync_id = 0;
  auto tampered = events;
  tampered.erase(
      std::remove_if(tampered.begin(), tampered.end(),
                     [](const TraceEvent& e) {
                       return e.kind == Kind::LockReleased;
                     }),
      tampered.end());
  tampered.push_back(grant);
  EXPECT_TRUE(dsm::validate_trace(tampered).has_value());
}

// ---- adaptive decision events (invariant 5) ---------------------------------

TEST(Validator, StrategySwitchRequiresAProbeSample) {
  // A decision event with no probe sample at all: invalid.
  auto events = make_events({{Kind::StrategySwitched, 1, 7}});
  EXPECT_TRUE(dsm::validate_trace(events).has_value());

  // A probe from an *earlier* episode does not license a later switch.
  events = make_events(
      {{Kind::ProbeSampled, 1, 6}, {Kind::StrategySwitched, 1, 7}});
  EXPECT_TRUE(dsm::validate_trace(events).has_value());

  // Another rank's probe of the right episode does not count either:
  // tuners are per-node.
  events = make_events(
      {{Kind::ProbeSampled, 2, 7}, {Kind::StrategySwitched, 1, 7}});
  EXPECT_TRUE(dsm::validate_trace(events).has_value());
}

TEST(Validator, ProbeThenDecisionsOfTheSameEpisodeValidate) {
  const auto events = make_events({{Kind::ProbeSampled, 1, 7},
                                   {Kind::StrategySwitched, 1, 7},
                                   {Kind::LanesRetuned, 1, 7},
                                   {Kind::RunsCoalesced, 1, 7},
                                   {Kind::ProbeSampled, 1, 8},
                                   {Kind::LanesRetuned, 1, 8}});
  const auto err = dsm::validate_trace(events);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Validator, AdaptiveEventsAreLifecycleExempt) {
  // Probe/decision events interleave freely with protocol traffic without
  // counting as lock/barrier lifecycle steps.
  const auto events = make_events({{Kind::LockGranted, 1, 0},
                                   {Kind::ProbeSampled, 1, 3},
                                   {Kind::StrategySwitched, 1, 3},
                                   {Kind::LockReleased, 1, 0}});
  const auto err = dsm::validate_trace(events);
  EXPECT_FALSE(err.has_value()) << *err;
}
