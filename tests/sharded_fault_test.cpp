// Fault injection against the sharded home directory (docs/SHARDING.md):
// every shard session of every remote runs behind a FaultyEndpoint, with
// regions migrating between shards mid-run.  The acceptance bar is the
// same as the single-home fault suite — the master image converges to the
// fault-free expectation and every shard's protocol trace validates — so
// no grant, ack, or released byte may be lost to the combination of
// faults, redirects, and handoffs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "dsm/sharded_cluster.hpp"
#include "dsm/trace.hpp"
#include "msg/faulty.hpp"
#include "obj/object_dsm.hpp"
#include "replicated_harness.hpp"
#include "test_time.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
namespace obj = hdsm::obj;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kElems = 64;

tags::TypePtr gthv() {
  return tags::TypeDesc::struct_of(
      "G", {{"A", tags::TypeDesc::array(tags::t_longlong(), kElems)}});
}

dsm::RetryPolicy fast_retry() {
  dsm::RetryPolicy p;
  p.timeout = hdsm::test::scaled(25ms);
  p.backoff = 1.5;
  p.max_timeout = hdsm::test::scaled(200ms);
  p.max_retries = 12;
  return p;
}

std::vector<std::pair<std::uint64_t, std::int64_t>> ops_of(std::uint32_t rank,
                                                           int ops) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> v;
  std::mt19937_64 rng(500 + rank);
  for (int i = 0; i < ops; ++i) {
    v.emplace_back(rng() % kElems,
                   static_cast<std::int64_t>(rng() % 100) - 50);
  }
  return v;
}

std::vector<std::int64_t> expected_array(std::uint32_t num_remotes, int ops) {
  std::vector<std::int64_t> e(kElems, 0);
  for (std::uint32_t r = 1; r <= num_remotes; ++r) {
    for (const auto& [idx, delta] : ops_of(r, ops)) e[idx] += delta;
  }
  return e;
}

/// Per-shard protocol validity, plus the cross-shard exactly-once bar:
/// a request's updates must be applied at exactly one shard, ever — a
/// (rank, seq) pair appearing in two shard logs means a duplicate
/// re-executed after a migration.
void validate_shard_traces(const std::vector<dsm::TraceLog>& logs) {
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> applied;
  for (std::uint32_t s = 0; s < logs.size(); ++s) {
    const auto snap = logs[s].snapshot();
    const auto err = dsm::validate_trace(snap);
    EXPECT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
    for (const auto& ev : snap) {
      if (ev.kind != dsm::TraceEvent::Kind::UpdatesApplied || ev.req == 0) {
        continue;
      }
      const auto [it, fresh] = applied.emplace(
          std::make_pair(ev.rank, ev.req), s);
      EXPECT_TRUE(fresh) << "rank " << ev.rank << " request #" << ev.req
                         << " applied at shard " << it->second
                         << " and again at shard " << s;
    }
  }
}

/// Run `num_remotes` remotes against `num_shards` home shards with every
/// (rank, shard) session behind its own deterministic FaultyEndpoint.
/// When `migrate`, a driver thread keeps handing mutex 0 between shards
/// for the whole run.  Converges, validates every shard trace.
void converge_sharded(const msg::FaultOptions& fault, std::uint32_t num_shards,
                      std::uint32_t num_remotes, int ops, bool migrate,
                      dsm::CodecMode codec = dsm::CodecMode::Off) {
  std::vector<dsm::TraceLog> logs(num_shards);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = num_shards;
  for (auto& l : logs) opts.shard_traces.push_back(&l);
  dsm::ShardedRemoteOptions ropts;
  ropts.retry = fast_retry();
  ropts.dsd.codec = codec;
  std::vector<const plat::PlatformDesc*> platforms(num_remotes,
                                                   &plat::linux_ia32());
  dsm::ShardedCluster cluster(
      gthv(), plat::linux_ia32(), platforms, opts,
      [&fault](std::uint32_t rank, std::uint32_t shard, msg::EndpointPtr ep) {
        msg::FaultOptions per_session = fault;
        per_session.seed = fault.seed + rank * 64 + shard;
        return msg::make_faulty(std::move(ep), per_session);
      },
      ropts);

  std::atomic<bool> done{false};
  std::thread migrator;
  if (migrate) {
    migrator = std::thread([&] {
      std::uint32_t dst = 1 % num_shards;
      while (!done.load()) {
        cluster.home().migrate_region(0, dst);
        dst = (dst + 1) % num_shards;
        std::this_thread::sleep_for(500us);
      }
    });
  }

  cluster.run(
      [&](dsm::ShardedHome& home) {
        home.set_barrier_count(0, num_remotes + 1);
        home.barrier(0);
        home.wait_all_joined();
      },
      [&](dsm::ShardedRemote& remote) {
        for (const auto& [idx, delta] : ops_of(remote.rank(), ops)) {
          remote.lock(0);
          auto a = remote.space().view<std::int64_t>("A");
          a.set(idx, a.get(idx) + delta);
          remote.unlock(0);
        }
        remote.barrier(0);
        remote.join();
      });
  done.store(true);
  if (migrator.joinable()) migrator.join();

  const std::vector<std::int64_t> expected = expected_array(num_remotes, ops);
  auto a = cluster.home().space().view<std::int64_t>("A");
  bool diverged = false;
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(a.get(i), expected[i]) << "element " << i;
    if (a.get(i) != expected[i]) diverged = true;
  }
  if (diverged && std::getenv("HDSM_DUMP_TRACE") != nullptr) {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      for (const auto& ev : logs[s].snapshot()) {
        std::fprintf(stderr, "sh%u #%llu %s rank=%u sync=%u req=%llu b=%llu\n",
                     s, static_cast<unsigned long long>(ev.seq),
                     dsm::trace_kind_name(ev.kind), ev.rank, ev.sync_id,
                     static_cast<unsigned long long>(ev.req),
                     static_cast<unsigned long long>(ev.bytes));
      }
    }
  }
  validate_shard_traces(logs);
  if (migrate) {
    EXPECT_GE(cluster.home().stats().region_migrations, 1u);
  }
}

}  // namespace

TEST(ShardedFaults, ConvergesUnderDrop) {
  msg::FaultOptions f;
  f.send.drop = 0.2;
  f.recv.drop = 0.2;
  converge_sharded(f, 2, 2, 10, /*migrate=*/false);
}

TEST(ShardedFaults, ConvergesUnderDuplication) {
  msg::FaultOptions f;
  f.send.duplicate = 1.0;  // every frame sent twice, on every session
  f.recv.duplicate = 0.5;
  converge_sharded(f, 2, 2, 10, /*migrate=*/false);
}

TEST(ShardedFaults, ConvergesUnderCombinedFaultsFourShards) {
  msg::FaultOptions f;
  f.send.drop = 0.1;
  f.send.duplicate = 0.2;
  f.send.delay = 0.2;
  f.send.delay_ms = 1ms;
  f.recv.drop = 0.1;
  f.recv.duplicate = 0.2;
  converge_sharded(f, 4, 3, 8, /*migrate=*/false);
}

TEST(ShardedFaults, ConvergesUnderCombinedFaultsWithCodecForced) {
  // Same gauntlet with every update payload compressed: directory-based
  // coherence across shards must retransmit, dedup, and apply compressed
  // payloads exactly like raw ones.
  msg::FaultOptions f;
  f.send.drop = 0.1;
  f.send.duplicate = 0.2;
  f.send.delay = 0.2;
  f.send.delay_ms = 1ms;
  f.recv.drop = 0.1;
  f.recv.duplicate = 0.2;
  converge_sharded(f, 2, 2, 8, /*migrate=*/false, dsm::CodecMode::Forced);
}

TEST(ShardedFaults, MigrationUnderDropLosesNoGrantsOrUpdates) {
  // The issue's acceptance case: a grant can execute at the old owner,
  // have its reply dropped by the fault layer, and the region migrate
  // before the retransmit — the re-issued request must be answered from
  // the migrated reply cache, exactly once.
  msg::FaultOptions f;
  f.send.drop = 0.2;
  f.recv.drop = 0.2;
  converge_sharded(f, 2, 2, 12, /*migrate=*/true);
}

TEST(ShardedFaults, MigrationUnderDuplicationAppliesExactlyOnce) {
  msg::FaultOptions f;
  f.send.duplicate = 0.5;
  f.recv.duplicate = 0.5;
  converge_sharded(f, 2, 2, 12, /*migrate=*/true);
}

TEST(ShardedFaults, MigrationUnderCombinedFaults) {
  msg::FaultOptions f;
  f.seed = 17;
  f.send.drop = 0.15;
  f.send.duplicate = 0.25;
  f.recv.drop = 0.15;
  converge_sharded(f, 4, 2, 10, /*migrate=*/true);
}

// ---- failover under faults (docs/REPLICATION.md) ---------------------------
//
// The primary is killed mid-run with the fault layer active on every
// session, so the handover window sees dropped grants, duplicated
// retransmits, and reordered frames.  The harness validates the standby's
// trace end to end (the replayed prefix and the post-promotion suffix must
// form one coherent history) and asserts exactly-once application across
// the epoch bump.

TEST(ShardedFaults, FailoverHandoverUnderDrop) {
  msg::FaultOptions f;
  f.send.drop = 0.2;
  f.recv.drop = 0.2;
  hdsm::test::converge_replicated(&f, 2, 2, 10, /*failover=*/true);
}

TEST(ShardedFaults, FailoverHandoverUnderDuplication) {
  msg::FaultOptions f;
  f.send.duplicate = 1.0;  // every frame twice, including across the bump
  f.recv.duplicate = 0.5;
  hdsm::test::converge_replicated(&f, 2, 2, 10, /*failover=*/true);
}

TEST(ShardedFaults, FailoverHandoverUnderReorder) {
  msg::FaultOptions f;
  f.send.reorder = 0.3;
  f.send.reorder_window = 3;
  hdsm::test::converge_replicated(&f, 2, 2, 10, /*failover=*/true);
}

TEST(ShardedFaults, FailoverHandoverUnderCombinedFaultsAndReset) {
  // Sessions also die of their own accord (reset) before and after the
  // failover, so redials exercise both the resume path at the promoted
  // standby and the re-attach path at whichever home is serving.
  msg::FaultOptions f;
  f.seed = 23;
  f.send.drop = 0.1;
  f.send.duplicate = 0.2;
  f.recv.drop = 0.1;
  f.send.reset_after = 40;
  hdsm::test::converge_replicated(&f, 2, 2, 10, /*failover=*/true);
}

// ---- object-granularity fault schedules (docs/OBJECTS.md) ------------------
//
// The same fault matrix replayed against an ObjectCluster: the unit of
// coherence is an object, episodes ship dirty-object runs with no page
// machinery armed, and the acceptance bar is unchanged — the master image
// converges to the fault-free replay, every shard trace validates, and no
// (rank, request) pair is applied twice across shards.  Strict entry
// consistency must survive the faults too: zero page faults diffed, zero
// pending pulls, every shipped byte attributed to an object episode.

namespace {

obj::ObjectLayoutPtr obj_layout() {
  obj::ObjectLayoutConfig lc;
  lc.num_regions = 8;
  lc.classes.push_back({"O", tags::t_longlong(), 1, kElems});
  return std::make_shared<const obj::ObjectLayout>(std::move(lc));
}

/// Object-mode twin of converge_sharded: the same per-rank op streams, but
/// each op locks the mutex guarding its object's hashed region instead of
/// one global mutex, so the schedule exercises cross-region interleavings
/// the page harness never sees.
void converge_objects(const msg::FaultOptions& fault, std::uint32_t num_shards,
                      std::uint32_t num_remotes, int ops, bool migrate) {
  obj::ObjectLayoutPtr layout = obj_layout();
  std::vector<dsm::TraceLog> logs(num_shards);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = num_shards;
  for (auto& l : logs) opts.shard_traces.push_back(&l);
  dsm::ShardedRemoteOptions ropts;
  ropts.retry = fast_retry();
  std::vector<const plat::PlatformDesc*> platforms(num_remotes,
                                                   &plat::linux_ia32());
  obj::ObjectCluster cluster(
      layout, plat::linux_ia32(), platforms, opts,
      [&fault](std::uint32_t rank, std::uint32_t shard, msg::EndpointPtr ep) {
        msg::FaultOptions per_session = fault;
        per_session.seed = fault.seed + rank * 64 + shard;
        return msg::make_faulty(std::move(ep), per_session);
      },
      ropts);

  std::atomic<bool> done{false};
  std::thread migrator;
  if (migrate) {
    migrator = std::thread([&] {
      std::uint32_t dst = 1 % num_shards;
      while (!done.load()) {
        cluster.home().node().migrate_region(0, dst);
        dst = (dst + 1) % num_shards;
        std::this_thread::sleep_for(500us);
      }
    });
  }

  cluster.run(
      [&](obj::ObjectHome& home) {
        home.node().set_barrier_count(0, num_remotes + 1);
        home.barrier(0);
        home.wait_all_joined();
      },
      [&](obj::ObjectRemote& remote) {
        auto acc = remote.accessor<std::int64_t>(0);
        for (const auto& [idx, delta] : ops_of(remote.rank(), ops)) {
          const std::uint32_t region = layout->region_of(0, idx);
          remote.lock(region);
          acc.set(idx, acc.get(idx) + delta);
          remote.unlock(region);
        }
        remote.barrier(0);
        remote.join();
      });
  done.store(true);
  if (migrator.joinable()) migrator.join();

  const std::vector<std::int64_t> expected = expected_array(num_remotes, ops);
  auto acc = cluster.home().accessor<std::int64_t>(0);
  for (std::uint64_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(acc.get(i), expected[i]) << "object " << i;
  }
  validate_shard_traces(logs);

  // Strict entry consistency held through the faults: the page machinery
  // never fired, and everything shipped was an object episode.
  const dsm::ShareStats stats = cluster.total_stats();
  EXPECT_EQ(stats.dirty_pages, 0u);
  EXPECT_EQ(stats.pending_pulls, 0u);
  EXPECT_GT(stats.object_episodes, 0u);
  EXPECT_GE(stats.objects_shipped, stats.object_episodes);
  if (migrate) {
    EXPECT_GE(cluster.home().node().stats().region_migrations, 1u);
  }
}

}  // namespace

TEST(ObjectFaults, ConvergesUnderDrop) {
  msg::FaultOptions f;
  f.send.drop = 0.2;
  f.recv.drop = 0.2;
  converge_objects(f, 2, 2, 10, /*migrate=*/false);
}

TEST(ObjectFaults, ConvergesUnderDuplication) {
  msg::FaultOptions f;
  f.send.duplicate = 1.0;  // every frame sent twice, on every session
  f.recv.duplicate = 0.5;
  converge_objects(f, 2, 2, 10, /*migrate=*/false);
}

TEST(ObjectFaults, ConvergesUnderReorder) {
  msg::FaultOptions f;
  f.send.reorder = 0.3;
  f.send.reorder_window = 3;
  converge_objects(f, 2, 2, 10, /*migrate=*/false);
}

TEST(ObjectFaults, MigrationUnderCombinedFaults) {
  msg::FaultOptions f;
  f.seed = 31;
  f.send.drop = 0.15;
  f.send.duplicate = 0.25;
  f.recv.drop = 0.15;
  converge_objects(f, 4, 2, 10, /*migrate=*/true);
}

TEST(ObjectFaults, SessionResetRecoversThroughReconnect) {
  // The object-mode twin of the page-mode reset test below: the transport
  // of the shard owning the hot object dies mid-run, the remote re-dials
  // through the per-shard reconnect hook, and the dirty-object pipeline
  // resumes with the dedup horizon intact.
  obj::ObjectLayoutPtr layout = obj_layout();
  std::vector<dsm::TraceLog> logs(2);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  opts.shard_traces = {&logs[0], &logs[1]};
  obj::ObjectHome home(layout, plat::linux_ia32(), opts);

  // Pick the object whose region lives on shard 0 — the doomed session.
  const std::uint64_t idx = 0;
  const std::uint32_t region = layout->region_of(0, idx);
  const std::uint32_t shard = home.node().shard_of(region);

  dsm::ShardedRemoteOptions ropts;
  ropts.retry = fast_retry();
  ropts.reconnect = [&home](std::uint32_t s) {
    auto [home_side, remote_side] = msg::make_channel_pair();
    home.node().attach_endpoint(1, s, std::move(home_side));
    return std::move(remote_side);
  };
  std::vector<msg::EndpointPtr> eps = home.node().attach(1);
  msg::FaultOptions f;
  f.send.reset_after = 9;  // dies partway through the workload
  eps[shard] = msg::make_faulty(std::move(eps[shard]), f);
  obj::ObjectRemote remote(layout, plat::linux_ia32(), 1, std::move(eps),
                           ropts);
  home.node().start();

  constexpr int kOps = 12;
  auto acc = remote.accessor<std::int64_t>(0);
  for (int i = 0; i < kOps; ++i) {
    remote.lock(region);
    acc.set(idx, acc.get(idx) + 1);
    remote.unlock(region);
  }
  remote.join();
  home.wait_all_joined();

  EXPECT_EQ(remote.node().stats().reconnects, 1u);
  EXPECT_EQ(home.accessor<std::int64_t>(0).get(idx), kOps);
  validate_shard_traces(logs);
  EXPECT_EQ(home.node().stats().dirty_pages, 0u);
  home.node().stop();
}

TEST(ShardedFaults, SessionResetRecoversThroughReconnect) {
  // One shard session's transport dies mid-run; the remote re-dials that
  // shard through its per-shard reconnect hook (resume Hello preserves the
  // dedup horizon) and the run still converges.
  std::vector<dsm::TraceLog> logs(2);
  dsm::ShardedHomeOptions opts;
  opts.num_shards = 2;
  opts.shard_traces = {&logs[0], &logs[1]};
  dsm::ShardedHome home(gthv(), plat::linux_ia32(), opts);

  dsm::ShardedRemoteOptions ropts;
  ropts.retry = fast_retry();
  ropts.reconnect = [&home](std::uint32_t shard) {
    auto [home_side, remote_side] = msg::make_channel_pair();
    home.attach_endpoint(1, shard, std::move(home_side));
    return std::move(remote_side);
  };
  std::vector<msg::EndpointPtr> eps = home.attach(1);
  msg::FaultOptions f;
  f.send.reset_after = 9;  // dies partway through the workload
  eps[0] = msg::make_faulty(std::move(eps[0]), f);
  dsm::ShardedRemote remote(gthv(), plat::linux_ia32(), 1, std::move(eps),
                            ropts);
  home.start();

  constexpr int kOps = 12;
  for (int i = 0; i < kOps; ++i) {
    remote.lock(0);  // region 0 lives on shard 0: the doomed session
    auto a = remote.space().view<std::int64_t>("A");
    a.set(0, a.get(0) + 1);
    remote.unlock(0);
  }
  remote.join();
  home.wait_all_joined();

  EXPECT_EQ(remote.stats().reconnects, 1u);
  EXPECT_EQ(home.space().view<std::int64_t>("A").get(0), kOps);
  for (int s = 0; s < 2; ++s) {
    const auto err = dsm::validate_trace(logs[s].snapshot());
    EXPECT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
  home.stop();
}
