// Tests for hdsm::codec (docs/COMPRESSION.md): lossless round trips across
// element sizes and value distributions, strict rejection of every
// malformed stream shape (truncation, trailing bytes, bit flips, header
// lies), and the engine-level contracts — pinned-off wire stability,
// forced-on cross-ABI equivalence, and all-or-nothing rejection of
// payloads carrying a corrupt compressed block.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "codec/codec.hpp"
#include "dsm/global_space.hpp"
#include "dsm/sync_engine.hpp"
#include "dsm/update.hpp"
#include "msg/message.hpp"

namespace codec = hdsm::codec;
namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;
using tags::TypeDesc;

namespace {

std::vector<std::byte> as_bytes(const void* p, std::size_t n) {
  std::vector<std::byte> out(n);
  std::memcpy(out.data(), p, n);
  return out;
}

/// Encode, then decode back, asserting byte equality.  Returns the encode
/// result so tests can also assert on ratio / engagement.
codec::EncodeResult round_trip(const std::vector<std::byte>& raw,
                               std::uint32_t elem_size) {
  std::vector<std::byte> wire;
  const codec::EncodeResult r =
      codec::encode_run(raw.data(), raw.size(), elem_size, wire);
  if (!r.encoded) {
    EXPECT_TRUE(wire.empty());
    return r;
  }
  EXPECT_EQ(wire.size(), r.bytes);
  EXPECT_LT(wire.size(), raw.size());
  std::vector<std::byte> back(raw.size());
  codec::decode_run(wire.data(), wire.size(), back.data(), back.size(),
                    elem_size);
  EXPECT_EQ(back, raw);
  return r;
}

template <typename T>
std::vector<std::byte> pattern_bytes(std::size_t count,
                                     T (*gen)(std::size_t)) {
  std::vector<T> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = gen(i);
  return as_bytes(v.data(), count * sizeof(T));
}

tags::TypePtr codec_gthv(std::uint64_t ints = 4096) {
  return TypeDesc::struct_of("G",
                             {{"GThP", TypeDesc::pointer()},
                              {"A", TypeDesc::array(tags::t_int(), ints)},
                              {"D", TypeDesc::array(tags::t_double(), 256)},
                              {"n", tags::t_int()}});
}

/// Dirty a smooth (highly compressible) region plus a noisy one.
void write_workload(dsm::GlobalSpace& g, std::uint64_t ints, int salt) {
  auto a = g.view<std::int32_t>("A");
  for (std::uint64_t i = 0; i < ints; ++i) {
    a.set(i, static_cast<std::int32_t>(i * 3 + static_cast<unsigned>(salt)));
  }
  auto d = g.view<double>("D");
  for (std::uint64_t i = 0; i < 256; ++i) {
    d.set(i, 1.0 + static_cast<double>(i) * 0.25 + salt);
  }
  g.view<std::int32_t>("n").set(salt);
}

}  // namespace

// ---- round trips across element sizes and distributions --------------------

TEST(CodecRoundTrip, ConstantRunsCompressHard) {
  for (const std::uint32_t es : {1u, 2u, 4u, 8u}) {
    std::vector<std::byte> raw(256 * es, std::byte{0x5a});
    const auto r = round_trip(raw, es);
    ASSERT_TRUE(r.encoded) << "elem size " << es;
    // All-zero residuals: header + element 0 + one width byte per chunk.
    EXPECT_LT(r.bytes, raw.size() / 4) << "elem size " << es;
  }
}

TEST(CodecRoundTrip, RampPrefersLinearPredictor) {
  const auto raw = pattern_bytes<std::int64_t>(
      512, +[](std::size_t i) { return static_cast<std::int64_t>(i) * 1000; });
  const auto r = round_trip(raw, 8);
  ASSERT_TRUE(r.encoded);
  EXPECT_EQ(r.predictor, codec::Predictor::Linear);
  EXPECT_LT(r.bytes, raw.size() / 2);
}

TEST(CodecRoundTrip, SmoothDoublesCompress) {
  const auto raw = pattern_bytes<double>(
      512, +[](std::size_t i) { return 100.0 + 0.125 * static_cast<double>(i); });
  const auto r = round_trip(raw, 8);
  EXPECT_TRUE(r.encoded);
}

TEST(CodecRoundTrip, WhiteNoiseShipsRaw) {
  std::mt19937_64 rng(7);
  std::vector<std::byte> raw(1024);
  for (auto& b : raw) b = static_cast<std::byte>(rng());
  std::vector<std::byte> wire;
  const auto r = codec::encode_run(raw.data(), raw.size(), 8, wire);
  // Incompressible input: the encoder must decline, leaving `out` alone.
  EXPECT_FALSE(r.encoded);
  EXPECT_TRUE(wire.empty());
}

TEST(CodecRoundTrip, DenormalsNansAndInfinitiesAreLossless) {
  std::vector<double> v = {std::numeric_limits<double>::denorm_min(),
                           -std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::signaling_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           -0.0,
                           0.0};
  while (v.size() < 64) v.push_back(v[v.size() % 8]);
  round_trip(as_bytes(v.data(), v.size() * 8), 8);  // asserts byte equality
}

TEST(CodecRoundTrip, RandomizedAcrossSizesAndDistributions) {
  std::mt19937_64 rng(42);
  for (const std::uint32_t es : {1u, 2u, 4u, 8u}) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t count = 8 + rng() % 700;
      std::vector<std::byte> raw(count * es);
      // Mix distributions: step ramps with random noise amplitude.
      const std::uint64_t noise_mask = (1ull << (rng() % 16)) - 1;
      std::uint64_t acc = rng();
      for (std::size_t i = 0; i < count; ++i) {
        acc += 3 + (rng() & noise_mask);
        std::uint64_t x = acc;
        for (std::uint32_t b = 0; b < es; ++b) {
          raw[i * es + b] = static_cast<std::byte>(x & 0xff);
          x >>= 8;
        }
      }
      round_trip(raw, es);  // asserts losslessness whenever it encodes
    }
  }
}

TEST(CodecRoundTrip, UnencodableElementSizeDeclines) {
  std::vector<std::byte> raw(120, std::byte{1});
  std::vector<std::byte> wire;
  EXPECT_FALSE(codec::encode_run(raw.data(), raw.size(), 3, wire).encoded);
  EXPECT_TRUE(wire.empty());
}

// ---- malformed stream rejection --------------------------------------------

namespace {

/// A compressible stream to mutate in the rejection tests.
struct Encoded {
  std::vector<std::byte> raw;
  std::vector<std::byte> wire;
};

Encoded make_encoded() {
  Encoded e;
  e.raw = pattern_bytes<std::int32_t>(
      256, +[](std::size_t i) { return static_cast<std::int32_t>(i * 7 + 1); });
  const auto r = codec::encode_run(e.raw.data(), e.raw.size(), 4, e.wire);
  EXPECT_TRUE(r.encoded);
  return e;
}

}  // namespace

TEST(CodecReject, EveryTruncationThrows) {
  const Encoded e = make_encoded();
  std::vector<std::byte> dst(e.raw.size());
  for (std::size_t len = 0; len < e.wire.size(); ++len) {
    EXPECT_THROW(
        codec::decode_run(e.wire.data(), len, dst.data(), dst.size(), 4),
        std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(CodecReject, TrailingBytesThrow) {
  Encoded e = make_encoded();
  e.wire.push_back(std::byte{0});
  std::vector<std::byte> dst(e.raw.size());
  EXPECT_THROW(
      codec::decode_run(e.wire.data(), e.wire.size(), dst.data(), dst.size(),
                        4),
      std::runtime_error);
}

TEST(CodecReject, OversizedStreamThrows) {
  // A "compressed" stream at least as large as the raw bytes can never be
  // legitimate (the encoder never emits one); the decoder refuses up front.
  const Encoded e = make_encoded();
  std::vector<std::byte> dst(e.wire.size());  // pretend raw == wire size
  EXPECT_THROW(codec::decode_run(e.wire.data(), e.wire.size(), dst.data(),
                                 e.wire.size(), 4),
               std::runtime_error);
}

TEST(CodecReject, EverySingleBitFlipThrows) {
  const Encoded e = make_encoded();
  std::vector<std::byte> dst(e.raw.size());
  for (std::size_t pos = 0; pos < e.wire.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> mutated = e.wire;
      mutated[pos] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      EXPECT_THROW(codec::decode_run(mutated.data(), mutated.size(),
                                     dst.data(), dst.size(), 4),
                   std::runtime_error)
          << "byte " << pos << " bit " << bit;
    }
  }
}

TEST(CodecReject, ElementSizeDisagreementThrows) {
  const Encoded e = make_encoded();
  std::vector<std::byte> dst(e.raw.size());
  EXPECT_THROW(codec::decode_run(e.wire.data(), e.wire.size(), dst.data(),
                                 dst.size(), 8),
               std::runtime_error);
}

TEST(CodecReject, RawLengthDisagreementThrows) {
  const Encoded e = make_encoded();
  std::vector<std::byte> dst(e.raw.size() + 4);
  EXPECT_THROW(codec::decode_run(e.wire.data(), e.wire.size(), dst.data(),
                                 dst.size(), 4),
               std::runtime_error);
}

// ---- engine-level contracts ------------------------------------------------

TEST(CodecEngine, PinnedOffIsByteIdenticalAndUnflagged) {
  // codec = Off must produce the exact pre-codec wire: every block's tag_len
  // high bit clear and the payload re-encodable via the reference codec.
  const std::uint64_t ints = 4096;
  dsm::GlobalSpace g(codec_gthv(ints), plat::linux_ia32());
  dsm::ShareStats st;
  dsm::SyncOptions opts;  // codec defaults to Off
  dsm::SyncEngine se(g, opts, st);
  EXPECT_FALSE(se.codec_engaged());

  g.region().begin_tracking();
  write_workload(g, ints, 1);
  const auto payload = se.collect_payload();
  g.region().end_tracking();

  for (const auto& v : dsm::decode_update_block_views(payload)) {
    EXPECT_FALSE(v.compressed);
  }
  const auto blocks = dsm::decode_update_blocks(payload);
  EXPECT_EQ(payload, dsm::encode_update_blocks(blocks));
  EXPECT_EQ(st.codec_blocks, 0u);
}

TEST(CodecEngine, ForcedShrinksPayloadAndApplies) {
  const std::uint64_t ints = 4096;
  dsm::GlobalSpace off_g(codec_gthv(ints), plat::linux_ia32());
  dsm::GlobalSpace on_g(codec_gthv(ints), plat::linux_ia32());
  dsm::ShareStats off_st, on_st;
  dsm::SyncOptions off_opts;
  dsm::SyncOptions on_opts;
  on_opts.codec = dsm::CodecMode::Forced;
  dsm::SyncEngine off_se(off_g, off_opts, off_st);
  dsm::SyncEngine on_se(on_g, on_opts, on_st);
  EXPECT_TRUE(on_se.codec_engaged());

  off_g.region().begin_tracking();
  write_workload(off_g, ints, 2);
  const auto raw_payload = off_se.collect_payload();
  off_g.region().end_tracking();

  on_g.region().begin_tracking();
  write_workload(on_g, ints, 2);
  const auto coded_payload = on_se.collect_payload();
  on_g.region().end_tracking();

  EXPECT_LT(coded_payload.size(), raw_payload.size());
  EXPECT_GT(on_st.codec_blocks, 0u);
  EXPECT_GT(on_st.codec_raw_bytes, on_st.codec_wire_bytes);

  // Same-ABI receiver reproduces the exact image the raw payload builds.
  dsm::GlobalSpace ra(codec_gthv(ints), plat::linux_ia32());
  dsm::GlobalSpace rb(codec_gthv(ints), plat::linux_ia32());
  dsm::ShareStats sa, sb;
  dsm::SyncEngine rea(ra, {}, sa), reb(rb, {}, sb);
  const auto summary = msg::PlatformSummary::of(plat::linux_ia32());
  rea.apply_payload(raw_payload, summary);
  reb.apply_payload(coded_payload, summary);
  EXPECT_GT(sb.codec_decoded_blocks, 0u);
  for (std::uint64_t i = 0; i < ints; ++i) {
    ASSERT_EQ(ra.view<std::int32_t>("A").get(i),
              rb.view<std::int32_t>("A").get(i))
        << "element " << i;
  }
  for (std::uint64_t i = 0; i < 256; ++i) {
    ASSERT_EQ(ra.view<double>("D").get(i), rb.view<double>("D").get(i));
  }
}

TEST(CodecEngine, ForcedCrossAbiApplies) {
  // Big-endian SPARC sender, little-endian IA-32 receiver: the codec
  // reproduces the sender's exact bytes, then the normal conversion path
  // runs — heterogeneity and compression compose.
  const std::uint64_t ints = 2048;
  dsm::GlobalSpace sender(codec_gthv(ints), plat::solaris_sparc32());
  dsm::GlobalSpace receiver(codec_gthv(ints), plat::linux_ia32());
  dsm::ShareStats ss, rs;
  dsm::SyncOptions sopts;
  sopts.codec = dsm::CodecMode::Forced;
  dsm::SyncEngine se(sender, sopts, ss), re(receiver, {}, rs);

  sender.region().begin_tracking();
  write_workload(sender, ints, 3);
  const auto payload = se.collect_payload();
  sender.region().end_tracking();
  ASSERT_GT(ss.codec_blocks, 0u);

  re.apply_payload(payload, msg::PlatformSummary::of(plat::solaris_sparc32()));
  auto a = receiver.view<std::int32_t>("A");
  for (std::uint64_t i = 0; i < ints; ++i) {
    ASSERT_EQ(a.get(i), static_cast<std::int32_t>(i * 3 + 3)) << i;
  }
  EXPECT_EQ(receiver.view<double>("D").get(8), 1.0 + 8 * 0.25 + 3);
}

TEST(CodecEngine, CorruptCompressedBlockRejectsWholePayload) {
  const std::uint64_t ints = 4096;
  dsm::GlobalSpace sender(codec_gthv(ints), plat::linux_ia32());
  dsm::ShareStats ss;
  dsm::SyncOptions sopts;
  sopts.codec = dsm::CodecMode::Forced;
  dsm::SyncEngine se(sender, sopts, ss);

  sender.region().begin_tracking();
  write_workload(sender, ints, 4);
  auto payload = se.collect_payload();
  sender.region().end_tracking();

  // Flip one bit inside the *last* compressed block's data, so every
  // earlier block validates fine — then assert none of them applied.
  const auto views = dsm::decode_update_block_views(payload);
  const dsm::UpdateBlockView* victim = nullptr;
  for (const auto& v : views) {
    if (v.compressed) victim = &v;
  }
  ASSERT_NE(victim, nullptr) << "no compressed block in forced payload";
  const std::size_t off =
      static_cast<std::size_t>(victim->data - payload.data()) +
      static_cast<std::size_t>(victim->data_len) / 2;
  payload[off] ^= std::byte{0x10};

  dsm::GlobalSpace receiver(codec_gthv(ints), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine re(receiver, {}, rs);
  EXPECT_THROW(
      re.apply_payload(payload, msg::PlatformSummary::of(plat::linux_ia32())),
      std::runtime_error);
  EXPECT_EQ(rs.codec_decode_rejects, 1u);
  // All-or-nothing: even the blocks before the corrupt one left no trace.
  for (std::uint64_t i = 0; i < ints; ++i) {
    ASSERT_EQ(receiver.view<std::int32_t>("A").get(i), 0) << "element " << i;
  }
  EXPECT_EQ(receiver.view<std::int32_t>("n").get(), 0);
}

TEST(CodecEngine, SmallRunsShipRawUnderForced) {
  dsm::GlobalSpace g(codec_gthv(64), plat::linux_ia32());
  dsm::ShareStats st;
  dsm::SyncOptions opts;
  opts.codec = dsm::CodecMode::Forced;
  dsm::SyncEngine se(g, opts, st);

  g.region().begin_tracking();
  g.view<std::int32_t>("n").set(9);  // 4-byte run, far below kMinEncodeBytes
  const auto payload = se.collect_payload();
  g.region().end_tracking();

  for (const auto& v : dsm::decode_update_block_views(payload)) {
    EXPECT_FALSE(v.compressed);
  }
  EXPECT_EQ(st.codec_blocks, 0u);

  dsm::GlobalSpace r(codec_gthv(64), plat::linux_ia32());
  dsm::ShareStats rs;
  dsm::SyncEngine re(r, {}, rs);
  re.apply_payload(payload, msg::PlatformSummary::of(plat::linux_ia32()));
  EXPECT_EQ(r.view<std::int32_t>("n").get(), 9);
}
