// Cluster-wide telemetry through the real protocol: MetricsPull scrapes,
// home-side aggregation (merged view == sum of per-node snapshots),
// incarnation-epoch archiving across re-attach, trace validity of the
// scrape events — plus the rehome() × adaptive interaction with whole-page
// promotion forced on (byte-identical master image, validating trace).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "dsm/cluster.hpp"
#include "dsm/home.hpp"
#include "dsm/rehome.hpp"
#include "dsm/remote.hpp"
#include "dsm/trace.hpp"
#include "tags/describe.hpp"

namespace dsm = hdsm::dsm;
namespace obs = hdsm::obs;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
namespace msg = hdsm::msg;

namespace {

tags::TypePtr small_gthv(std::uint64_t n = 1024) {
  return tags::TypeDesc::struct_of(
      "G", {{"GThP", tags::TypeDesc::pointer()},
            {"A", tags::TypeDesc::array(tags::t_int(), n)},
            {"n", tags::t_int()}});
}

obs::ObsOptions obs_on() {
  obs::ObsOptions o;
  o.enabled = true;
  return o;
}

/// Assert that `ct.merged` equals the sum over all node + retired
/// snapshots, for every counter, gauge, and histogram — the scrape's core
/// correctness contract.
void expect_merged_is_sum(const obs::ClusterTelemetry& ct) {
  obs::MetricsSnapshot sum;
  for (const obs::NodeSnapshot& n : ct.nodes) sum.merge(n.metrics);
  for (const obs::NodeSnapshot& n : ct.retired) sum.merge(n.metrics);
  EXPECT_EQ(ct.merged, sum);
  // Histogram merges preserve total count and per-bucket sums.
  for (const auto& [name, merged] : ct.merged.histograms) {
    std::uint64_t count = 0, total = 0;
    for (const obs::NodeSnapshot& n : ct.nodes) {
      auto it = n.metrics.histograms.find(name);
      if (it == n.metrics.histograms.end()) continue;
      count += it->second.count;
      for (const auto& [idx, c] : it->second.buckets) total += c;
    }
    for (const obs::NodeSnapshot& n : ct.retired) {
      auto it = n.metrics.histograms.find(name);
      if (it == n.metrics.histograms.end()) continue;
      count += it->second.count;
      for (const auto& [idx, c] : it->second.buckets) total += c;
    }
    EXPECT_EQ(merged.count, count) << name;
    std::uint64_t merged_total = 0;
    for (const auto& [idx, c] : merged.buckets) merged_total += c;
    EXPECT_EQ(merged_total, total) << name;
  }
}

const obs::NodeSnapshot* node_of(const obs::ClusterTelemetry& ct,
                                 std::uint32_t rank) {
  for (const obs::NodeSnapshot& n : ct.nodes) {
    if (n.rank == rank) return &n;
  }
  return nullptr;
}

}  // namespace

TEST(ObsCluster, ScrapeEqualsSumOfNodeSnapshots) {
  dsm::HomeOptions opts;
  opts.obs = obs_on();
  dsm::HomeNode home(small_gthv(), plat::linux_ia32(), opts);
  dsm::RemoteOptions ropts;
  ropts.obs = obs_on();
  msg::EndpointPtr e1 = home.attach(1);
  msg::EndpointPtr e2 = home.attach(2);
  dsm::RemoteThread r1(small_gthv(), plat::linux_ia32(), 1, std::move(e1),
                       ropts);
  dsm::RemoteThread r2(small_gthv(), plat::solaris_sparc32(), 2, std::move(e2),
                       ropts);
  home.start();

  std::thread t1([&] {
    for (int i = 0; i < 3; ++i) {
      r1.lock(1);
      auto a = r1.space().view<std::int32_t>("A");
      a.set(i, a.get(i) + 1);
      r1.unlock(1);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 5; ++i) {
      r2.lock(2);
      auto a = r2.space().view<std::int32_t>("A");
      a.set(100 + i, a.get(100 + i) + 1);
      r2.unlock(2);
    }
  });
  t1.join();
  t2.join();

  // Each remote ships its snapshot home; the second pull's reply already
  // contains the first remote's report.
  const obs::ClusterTelemetry v1 = r1.pull_cluster_metrics();
  const obs::ClusterTelemetry v2 = r2.pull_cluster_metrics();
  EXPECT_EQ(node_of(v1, 1)->metrics.counters.at("stats.locks"), 3u);
  ASSERT_EQ(v2.nodes.size(), 3u);  // home + both remotes
  expect_merged_is_sum(v2);

  const obs::NodeSnapshot* n1 = node_of(v2, 1);
  const obs::NodeSnapshot* n2 = node_of(v2, 2);
  ASSERT_NE(n1, nullptr);
  ASSERT_NE(n2, nullptr);
  EXPECT_EQ(n1->metrics.counters.at("stats.locks"), 3u);
  EXPECT_EQ(n2->metrics.counters.at("stats.locks"), 5u);
  EXPECT_EQ(v2.merged.counters.at("stats.locks"), 8u);  // home holds none
  // Remotes with obs on carry phase histograms; the merged view keeps
  // their sample counts intact.
  EXPECT_GT(v2.merged.histograms.at("phase.episode.ns").count, 0u);

  // The home's own aggregated view agrees with what the wire carried.
  const obs::ClusterTelemetry local = home.cluster_telemetry();
  expect_merged_is_sum(local);
  EXPECT_EQ(local.merged.counters.at("stats.locks"), 8u);

  std::thread j1([&] { r1.join(); });
  std::thread j2([&] { r2.join(); });
  j1.join();
  j2.join();
  home.wait_all_joined();
  home.stop();
}

TEST(ObsCluster, ScrapeWorksWithObsDisabled) {
  // No Telemetry object anywhere: the scrape still answers, carrying the
  // ShareStats mirror only.
  dsm::HomeNode home(small_gthv(), plat::linux_ia32());
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep));
  home.start();
  EXPECT_EQ(home.telemetry(), nullptr);
  EXPECT_EQ(remote.telemetry(), nullptr);

  remote.lock(0);
  remote.space().view<std::int32_t>("A").set(0, 7);
  remote.unlock(0);

  const obs::ClusterTelemetry ct = remote.pull_cluster_metrics();
  ASSERT_EQ(ct.nodes.size(), 2u);
  expect_merged_is_sum(ct);
  EXPECT_EQ(ct.merged.counters.at("stats.locks"), 1u);
  EXPECT_TRUE(ct.merged.histograms.empty());  // no obs recording anywhere

  remote.join();
  home.wait_all_joined();
  home.stop();
}

TEST(ObsCluster, ReattachArchivesOldIncarnation) {
  dsm::HomeOptions opts;
  opts.obs = obs_on();
  dsm::HomeNode home(small_gthv(), plat::linux_ia32(), opts);
  dsm::RemoteOptions ropts;
  ropts.obs = obs_on();
  home.start();

  std::uint64_t first_epoch = 0;
  {
    msg::EndpointPtr ep = home.attach(1);
    dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                             std::move(ep), ropts);
    for (int i = 0; i < 3; ++i) {
      remote.lock(1);
      remote.unlock(1);
    }
    const obs::ClusterTelemetry ct = remote.pull_cluster_metrics();
    first_epoch = node_of(ct, 1)->epoch;
    remote.join();  // final pull rides along (obs on)
  }
  home.wait_all_joined();

  // Same rank re-attaches as a fresh incarnation (new epoch nonce).
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteThread reborn(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep), ropts);
  for (int i = 0; i < 2; ++i) {
    reborn.lock(1);
    reborn.unlock(1);
  }
  const obs::ClusterTelemetry ct = reborn.pull_cluster_metrics();
  expect_merged_is_sum(ct);

  // The first incarnation's final snapshot is archived, not merged away:
  // per-incarnation deltas stay recoverable across the reconnect.
  ASSERT_EQ(ct.retired.size(), 1u);
  EXPECT_EQ(ct.retired[0].rank, 1u);
  EXPECT_EQ(ct.retired[0].epoch, first_epoch);
  EXPECT_EQ(ct.retired[0].metrics.counters.at("stats.locks"), 3u);
  const obs::NodeSnapshot* current = node_of(ct, 1);
  ASSERT_NE(current, nullptr);
  EXPECT_NE(current->epoch, first_epoch);
  EXPECT_EQ(current->metrics.counters.at("stats.locks"), 2u);
  EXPECT_EQ(ct.merged.counters.at("stats.locks"), 5u);

  reborn.join();
  home.wait_all_joined();
  home.stop();
}

TEST(ObsCluster, ScrapeEventsPassTraceValidation) {
  dsm::TraceLog log;
  dsm::HomeOptions opts;
  opts.obs = obs_on();
  opts.trace = &log;
  dsm::HomeNode home(small_gthv(), plat::linux_ia32(), opts);
  msg::EndpointPtr ep = home.attach(1);
  dsm::RemoteOptions ropts;
  ropts.obs = obs_on();
  dsm::RemoteThread remote(small_gthv(), plat::linux_ia32(), 1,
                           std::move(ep), ropts);
  home.start();

  remote.lock(0);
  remote.unlock(0);
  remote.pull_cluster_metrics();
  remote.join();
  home.wait_all_joined();
  home.stop();

  const std::vector<dsm::TraceEvent> events = log.snapshot();
  const auto error = dsm::validate_trace(events);
  EXPECT_FALSE(error.has_value()) << *error;
  std::size_t scrapes = 0;
  for (const dsm::TraceEvent& e : events) {
    if (e.kind == dsm::TraceEvent::Kind::MetricsScraped) ++scrapes;
  }
  // The explicit pull plus the final pre-join pull.
  EXPECT_EQ(scrapes, 2u);
}

TEST(ObsCluster, ClusterFacadeScrapesAndRecordsSpans) {
  const auto gthv = small_gthv(256);
  dsm::HomeOptions opts;
  opts.obs = obs_on();
  dsm::Cluster cluster(gthv, plat::linux_ia32(),
                       {&plat::linux_ia32(), &plat::solaris_sparc32()}, opts);
  cluster.run(
      [&](dsm::HomeNode& home) {
        home.lock(0);
        home.space().view<std::int32_t>("A").set(0, 1);
        home.unlock(0);
        home.barrier(0);
        home.wait_all_joined();
      },
      [&](dsm::RemoteThread& remote) {
        remote.lock(remote.rank());
        auto a = remote.space().view<std::int32_t>("A");
        a.set(remote.rank(), static_cast<std::int32_t>(remote.rank()));
        remote.unlock(remote.rank());
        remote.barrier(0);
        remote.join();
      });

  const obs::ClusterTelemetry ct = cluster.telemetry();
  ASSERT_EQ(ct.nodes.size(), 3u);
  expect_merged_is_sum(ct);
  const dsm::ShareStats total = cluster.total_stats();
  EXPECT_EQ(ct.merged.counters.at("stats.locks"), total.locks);
  EXPECT_EQ(ct.merged.counters.at("stats.barriers"), total.barriers);

  // Every node recorded spans: the master's lane on the home, the
  // application thread lane on each remote.
  ASSERT_NE(cluster.home().telemetry(), nullptr);
  EXPECT_GT(cluster.home().telemetry()->spans().total_spans(), 0u);
  for (std::uint32_t rank = 1; rank <= 2; ++rank) {
    ASSERT_NE(cluster.remote(rank).telemetry(), nullptr);
    EXPECT_GT(cluster.remote(rank).telemetry()->spans().total_spans(), 0u);
  }
  // The JSON rendering of the cluster view is non-trivial.
  EXPECT_NE(ct.to_json().find("\"merged\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Satellite: rehome() × SyncOptions::adaptive with whole-page promotion
// forced on.  Promotion changes traffic (pages ship whole on the
// barrier-release path) but must never change bytes — including through a
// subsequent master migration onto a byte-flipped platform.

namespace {

/// Ints per ownership chunk: 16 × int32 = 64 bytes, one cache line — the
/// minimum ownership granularity under which adaptive run coalescing is
/// safe (TunerConfig::max_merge_slack's documented precondition: slack may
/// bridge gaps up to a cache line, so concurrent writers interleaved finer
/// than that would get stale bytes over-shipped on their behalf).
constexpr std::uint64_t kChunk = 16;

/// Dense barrier-phase workload: the three threads own interleaved
/// cache-line chunks (chunk index ≡ thread mod 3) and each round every
/// thread rewrites all of its chunks, so every page is fully dirty and
/// crosses any promotion threshold while the inter-chunk gaps (128 B)
/// stay beyond the coalescer's reach.
void dense_barrier_workload(dsm::HomeNode& home, dsm::RemoteThread* r1,
                            dsm::RemoteThread* r2, std::uint32_t rounds,
                            std::uint64_t n) {
  const auto write_stripe = [n](auto view, std::uint64_t owner,
                                std::uint32_t round) {
    for (std::uint64_t c = owner; c * kChunk < n; c += 3) {
      for (std::uint64_t i = c * kChunk; i < std::min((c + 1) * kChunk, n);
           ++i) {
        view.set(i, static_cast<std::int32_t>(i * (round + 1) + owner));
      }
    }
  };
  std::thread t1([&, r1] {
    for (std::uint32_t round = 0; round < rounds; ++round) {
      write_stripe(r1->space().view<std::int32_t>("A"), 0, round);
      r1->barrier(0);
    }
    r1->join();
  });
  std::thread t2([&, r2] {
    for (std::uint32_t round = 0; round < rounds; ++round) {
      write_stripe(r2->space().view<std::int32_t>("A"), 1, round);
      r2->barrier(0);
    }
    r2->join();
  });
  for (std::uint32_t round = 0; round < rounds; ++round) {
    write_stripe(home.space().view<std::int32_t>("A"), 2, round);
    home.barrier(0);
  }
  t1.join();
  t2.join();
  home.wait_all_joined();
}

}  // namespace

TEST(RehomeAdaptive, PromotedWholePagesSurviveRehomeByteIdentical) {
  constexpr std::uint64_t kN = 4096;  // ~4 pages of int32 data
  constexpr std::uint32_t kRounds = 6;
  const auto gthv = small_gthv(kN);

  const auto run = [&](dsm::HomeOptions opts, dsm::ShareStats* stats_out)
      -> std::vector<std::byte> {
    dsm::HomeNode home(gthv, plat::linux_ia32(), opts);
    dsm::RemoteOptions ropts;
    ropts.dsd = opts.dsd;
    ropts.trace = opts.trace;
    msg::EndpointPtr e1 = home.attach(1);
    msg::EndpointPtr e2 = home.attach(2);
    dsm::RemoteThread r1(gthv, plat::linux_ia32(), 1, std::move(e1), ropts);
    dsm::RemoteThread r2(gthv, plat::linux_ia32(), 2, std::move(e2), ropts);
    home.start();
    dense_barrier_workload(home, &r1, &r2, kRounds, kN);
    if (stats_out != nullptr) {
      *stats_out = home.stats();
      *stats_out += r1.stats();
      *stats_out += r2.stats();
    }

    // Master migration onto the byte-flipped platform: the authoritative
    // image is CGT-RMR-converted into sparc64 representation.
    EXPECT_TRUE(home.quiesced());
    auto new_home = dsm::rehome(home, plat::solaris_sparc64());
    auto& region = new_home->space().region();
    std::vector<std::byte> image(region.data(),
                                 region.data() + region.length());
    new_home->stop();
    return image;
  };

  dsm::HomeOptions off;  // adaptive off: the reference bytes

  dsm::TraceLog log;
  dsm::HomeOptions on;  // adaptive on, promotion forced
  on.dsd.adaptive = true;
  on.dsd.tuner.warmup = 1;
  on.dsd.tuner.dwell = 1;
  // Pin the threshold so every dense page is promoted to whole-page mode
  // from the first tunable episode — the maximally different traffic shape.
  on.dsd.tuner.pin_whole_page_threshold = 0.05;
  on.trace = &log;

  const std::vector<std::byte> image_off = run(off, nullptr);
  dsm::ShareStats stats_on;
  const std::vector<std::byte> image_on = run(on, &stats_on);

  // Promotion actually fired — this test exercised the path it claims to.
  EXPECT_GT(stats_on.whole_page_promotions, 0u);
  EXPECT_GT(stats_on.adapt_episodes, 0u);

  ASSERT_EQ(image_off.size(), image_on.size());
  EXPECT_EQ(std::memcmp(image_off.data(), image_on.data(), image_off.size()),
            0)
      << "adaptive whole-page promotion changed master-image bytes across "
         "rehome";

  const auto error = dsm::validate_trace(log.snapshot());
  EXPECT_FALSE(error.has_value()) << *error;
}
