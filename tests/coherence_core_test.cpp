// Deterministic tests of the sans-I/O coherence core: every protocol path
// here is reached by stepping the pure state machine — no threads, no
// endpoints, no fault injection, no timing.  These are the interleavings
// PR 1 could only sample via seeded faults (duplicate Hello epochs,
// stale-generation unlock recovery, mid-episode barrier attach, reply-cache
// retransmission), plus an exhaustive small-schedule permutation driver
// that enumerates *every* causally-valid interleaving of a lock workload
// and validates each one's trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dsm/coherence_core.hpp"
#include "dsm/trace.hpp"

namespace dsm = hdsm::dsm;
namespace msg = hdsm::msg;
namespace idx = hdsm::idx;

using Action = dsm::CoherenceAction;
using Event = dsm::CoherenceEvent;

namespace {

/// Trivial in-memory codec: a payload is the raw bytes of the run array
/// (UpdateRun is trivially copyable).  `poisoned` makes apply throw, like a
/// malformed wire payload would at the real SyncEngine.
struct FakeCodec final : dsm::UpdateCodec {
  bool poisoned = false;
  int pack_calls = 0;
  int apply_calls = 0;

  std::vector<std::byte> pack(
      const std::vector<idx::UpdateRun>& runs) override {
    ++pack_calls;
    std::vector<std::byte> out(runs.size() * sizeof(idx::UpdateRun));
    if (!out.empty()) std::memcpy(out.data(), runs.data(), out.size());
    return out;
  }

  std::vector<idx::UpdateRun> apply(const std::vector<std::byte>& payload,
                                    const msg::PlatformSummary&) override {
    ++apply_calls;
    if (poisoned) throw std::runtime_error("poisoned payload");
    if (payload.size() % sizeof(idx::UpdateRun) != 0) {
      throw std::runtime_error("bad payload size");
    }
    std::vector<idx::UpdateRun> runs(payload.size() / sizeof(idx::UpdateRun));
    if (!runs.empty()) {
      std::memcpy(runs.data(), payload.data(), payload.size());
    }
    return runs;
  }
};

std::vector<std::byte> fake_payload(const std::vector<idx::UpdateRun>& runs) {
  FakeCodec c;
  return c.pack(runs);
}

/// A core plus a TraceLog fed from its Trace actions, so every test can
/// finish with validate_trace.
struct CoreHarness {
  dsm::ShareStats stats;
  FakeCodec codec;
  dsm::CoherenceCore core;
  dsm::TraceLog log;

  explicit CoreHarness(std::uint32_t locks = 4, std::uint32_t barriers = 2,
                       bool scoped = false)
      : core(
            [&] {
              dsm::CoherenceConfig cfg;
              cfg.num_locks = locks;
              cfg.num_barriers = barriers;
              cfg.scoped_pending = scoped;
              // layout_runs stays empty: Hello shape negotiation is the
              // data plane's concern, not these protocol tests'.
              return cfg;
            }(),
            codec, stats) {}

  std::vector<Action> step(Event e) {
    std::vector<Action> actions = core.step(e);
    for (const Action& a : actions) {
      if (a.kind == Action::Kind::Trace) {
        log.append(a.trace.kind, a.trace.rank, a.trace.sync_id,
                   a.trace.blocks, a.trace.bytes, a.trace.req);
      }
    }
    return actions;
  }

  void attach(std::uint32_t rank, std::vector<idx::UpdateRun> pending = {}) {
    step(Event::peer_attached(rank, std::move(pending)));
  }

  void expect_valid_trace() {
    const auto err = dsm::validate_trace(log.snapshot());
    EXPECT_FALSE(err.has_value()) << *err;
  }
};

msg::Message make_msg(msg::MsgType type, std::uint32_t rank,
                      std::uint32_t seq, std::uint32_t sync_id = 0,
                      std::vector<std::byte> payload = {}) {
  msg::Message m;
  m.type = type;
  m.rank = rank;
  m.seq = seq;
  m.sync_id = sync_id;
  m.payload = std::move(payload);
  return m;
}

msg::Message make_hello(std::uint32_t rank, std::uint32_t epoch,
                        std::uint32_t seq = 0) {
  msg::Message m = make_msg(msg::MsgType::Hello, rank, seq, epoch);
  m.tag = "(4,1)";  // any nonempty tag: marks a session Hello
  return m;
}

int count_kind(const std::vector<Action>& actions, Action::Kind k) {
  return static_cast<int>(std::count_if(
      actions.begin(), actions.end(),
      [k](const Action& a) { return a.kind == k; }));
}

const msg::Message* find_send(const std::vector<Action>& actions,
                              std::uint32_t rank, msg::MsgType type) {
  for (const Action& a : actions) {
    if (a.kind == Action::Kind::Send && a.rank == rank &&
        a.message.type == type) {
      return &a.message;
    }
  }
  return nullptr;
}

}  // namespace

// ---- basics ----------------------------------------------------------------

TEST(CoherenceCore, TimeoutIsANoOp) {
  CoreHarness h;
  h.attach(1);
  EXPECT_TRUE(h.step(Event::timeout()).empty());
  EXPECT_TRUE(h.core.peer_active(1));
}

TEST(CoherenceCore, MasterChecksThrowBeforeAnyTransition) {
  CoreHarness h(2, 2);
  EXPECT_THROW(h.core.check_lock_index(2), std::out_of_range);
  EXPECT_THROW(h.core.check_barrier_index(9), std::out_of_range);
  EXPECT_THROW(h.core.check_master_unlock(0), std::logic_error);
  EXPECT_THROW(h.step(Event::master_unlock(0, {})), std::logic_error);
  // Nothing leaked into the state.
  EXPECT_EQ(h.core.lock_holder(0), -1);
  EXPECT_EQ(h.stats.unlocks, 0u);
}

TEST(CoherenceCore, LockLifecycleWithoutThreadsOrEndpoints) {
  CoreHarness h;
  h.attach(1, {{0, 0, 8}});

  // Remote 1 acquires: the grant ships its pending set.
  auto actions =
      h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  const msg::Message* grant = find_send(actions, 1, msg::MsgType::LockGrant);
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(grant->seq, 1u);
  EXPECT_EQ(grant->payload.size(), sizeof(idx::UpdateRun));
  EXPECT_EQ(h.core.lock_holder(0), 1);

  // Master queues behind it, then is woken by the remote's unlock.
  auto queued = h.step(Event::master_lock(0));
  EXPECT_EQ(count_kind(queued, Action::Kind::Send), 0);
  EXPECT_EQ(count_kind(queued, Action::Kind::WakeMaster), 0);
  EXPECT_FALSE(h.core.master_holds(0));
  actions = h.step(Event::msg_received(
      1, make_msg(msg::MsgType::UnlockRequest, 1, 2, 0, fake_payload({}))));
  EXPECT_NE(find_send(actions, 1, msg::MsgType::UnlockAck), nullptr);
  EXPECT_GE(count_kind(actions, Action::Kind::WakeMaster), 1);
  EXPECT_TRUE(h.core.master_holds(0));

  h.step(Event::master_unlock(0, {}));
  EXPECT_EQ(h.core.lock_holder(0), -1);
  EXPECT_EQ(h.stats.locks, 1u);  // master acquisitions only
  h.expect_valid_trace();
}

// ---- duplicate Hello epochs ------------------------------------------------

TEST(CoherenceCore, DuplicateHelloDoesNotResetDedupState) {
  CoreHarness h;
  h.attach(1);

  // Fresh incarnation: epoch 7, requests numbered from 1.
  h.step(Event::msg_received(1, make_hello(1, 7)));
  h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  auto actions = h.step(Event::msg_received(
      1, make_msg(msg::MsgType::UnlockRequest, 1, 2, 0, fake_payload({}))));
  ASSERT_NE(find_send(actions, 1, msg::MsgType::UnlockAck), nullptr);
  const int applies_after_unlock = h.codec.apply_calls;

  // A duplicated/reordered copy of the SAME Hello arrives mid-session.
  // It must NOT reset the dedup horizon...
  h.step(Event::msg_received(1, make_hello(1, 7)));

  // ...so a retransmit of the already-executed unlock is answered from the
  // cache, not re-applied.
  actions = h.step(Event::msg_received(
      1, make_msg(msg::MsgType::UnlockRequest, 1, 2, 0, fake_payload({}))));
  EXPECT_NE(find_send(actions, 1, msg::MsgType::UnlockAck), nullptr);
  EXPECT_EQ(h.codec.apply_calls, applies_after_unlock);
  EXPECT_EQ(h.stats.duplicates_dropped, 1u);

  // A DIFFERENT epoch is a genuinely new incarnation: state resets and
  // seq 1 is fresh again.
  h.step(Event::msg_received(1, make_hello(1, 9)));
  actions =
      h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  EXPECT_NE(find_send(actions, 1, msg::MsgType::LockGrant), nullptr);
  EXPECT_EQ(h.core.lock_holder(0), 1);
}

// ---- reply-cache retransmission --------------------------------------------

TEST(CoherenceCore, RetransmittedRequestGetsIdenticalCachedReply) {
  CoreHarness h;
  h.attach(1, {{0, 0, 4}, {1, 2, 6}});

  auto first =
      h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  const msg::Message* grant1 = find_send(first, 1, msg::MsgType::LockGrant);
  ASSERT_NE(grant1, nullptr);
  const msg::Message saved = *grant1;
  EXPECT_EQ(saved.payload.size(), 2 * sizeof(idx::UpdateRun));

  // The grant was lost; the remote retransmits.  The cached reply must be
  // byte-identical — the pending set was consumed by the first grant, so a
  // re-pack would (wrongly) ship an empty payload.
  auto second =
      h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  const msg::Message* grant2 = find_send(second, 1, msg::MsgType::LockGrant);
  ASSERT_NE(grant2, nullptr);
  EXPECT_EQ(grant2->payload, saved.payload);
  EXPECT_EQ(grant2->seq, saved.seq);
  EXPECT_EQ(h.stats.duplicates_dropped, 1u);
  h.expect_valid_trace();
}

// ---- generation-guarded reset recovery -------------------------------------

TEST(CoherenceCore, ResetRecoveryHonoredWhileGenerationUnchanged) {
  CoreHarness h;
  h.attach(1);
  h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  EXPECT_EQ(h.core.lock_holder(0), 1);
  EXPECT_EQ(h.core.recovery_entries(1), 1u);

  // The transport dies before the unlock lands: the home reclaims.
  h.step(Event::peer_detached(1));
  EXPECT_EQ(h.core.lock_holder(0), -1);

  // The remote reconnects and retransmits the outstanding unlock.  Nobody
  // was granted the mutex in between, so the diffs are applied and acked.
  h.attach(1);
  auto actions = h.step(Event::msg_received(
      1, make_msg(msg::MsgType::UnlockRequest, 1, 2, 0,
                  fake_payload({{0, 1, 3}}))));
  EXPECT_NE(find_send(actions, 1, msg::MsgType::UnlockAck), nullptr);
  EXPECT_EQ(count_kind(actions, Action::Kind::Detach), 0);
  // Honored recovery consumes the window.
  EXPECT_EQ(h.core.recovery_entries(1), 0u);
  h.expect_valid_trace();
}

TEST(CoherenceCore, ResetRecoveryDeniedAfterRegrant) {
  CoreHarness h;
  h.attach(1);
  h.attach(2);
  h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  h.step(Event::peer_detached(1));

  // Rank 2 acquires and releases in the window: the generation moved on
  // (and rank 1's recovery entry is erased by the regrant).
  h.step(Event::msg_received(2, make_msg(msg::MsgType::LockRequest, 2, 1)));
  EXPECT_EQ(h.core.recovery_entries(1), 0u);
  h.step(Event::msg_received(
      2, make_msg(msg::MsgType::UnlockRequest, 2, 2, 0, fake_payload({}))));

  // Rank 1's retransmitted unlock now carries stale diffs that would
  // overwrite rank 2's writes: dropped, sender detached, nothing applied.
  h.attach(1);
  const int applies_before = h.codec.apply_calls;
  auto actions = h.step(Event::msg_received(
      1, make_msg(msg::MsgType::UnlockRequest, 1, 2, 0,
                  fake_payload({{0, 0, 9}}))));
  ASSERT_EQ(count_kind(actions, Action::Kind::Detach), 1);
  const auto detach_it =
      std::find_if(actions.begin(), actions.end(), [](const Action& a) {
        return a.kind == Action::Kind::Detach;
      });
  EXPECT_NE(detach_it->reason.find("re-granted"), std::string::npos);
  EXPECT_EQ(h.codec.apply_calls, applies_before);
  EXPECT_FALSE(h.core.peer_active(1));
  EXPECT_EQ(h.core.recovery_entries(1), 0u);
  h.expect_valid_trace();
}

TEST(CoherenceCore, EveryGrantClosesOtherRanksRecoveryWindows) {
  CoreHarness h;
  h.attach(1);
  h.attach(2);
  h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  h.step(Event::peer_detached(1));
  EXPECT_EQ(h.core.recovery_entries(1), 1u);

  // The regrant to rank 2 closes rank 1's window for mutex 0 — at most one
  // rank ever holds a window per mutex.
  h.step(Event::msg_received(2, make_msg(msg::MsgType::LockRequest, 2, 1)));
  EXPECT_EQ(h.core.recovery_entries(1), 0u);
  EXPECT_EQ(h.core.recovery_entries(2), 1u);
}

// ---- protocol violations become Detach actions -----------------------------

TEST(CoherenceCore, MalformedPayloadDetachesPeerInsteadOfThrowing) {
  CoreHarness h;
  h.attach(1);
  h.step(Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1)));
  h.codec.poisoned = true;
  std::vector<Action> actions;
  ASSERT_NO_THROW(actions = h.step(Event::msg_received(
                      1, make_msg(msg::MsgType::UnlockRequest, 1, 2, 0,
                                  fake_payload({{0, 0, 1}})))));
  EXPECT_EQ(count_kind(actions, Action::Kind::Detach), 1);
  EXPECT_FALSE(h.core.peer_active(1));
  EXPECT_EQ(h.core.lock_holder(0), -1);  // its lock was reclaimed
}

TEST(CoherenceCore, OutOfRangeIndexesDetachTheSender) {
  CoreHarness h(2, 2);
  h.attach(1);
  auto actions = h.step(
      Event::msg_received(1, make_msg(msg::MsgType::LockRequest, 1, 1, 99)));
  EXPECT_EQ(count_kind(actions, Action::Kind::Detach), 1);
  EXPECT_FALSE(h.core.peer_active(1));

  h.attach(2);
  actions = h.step(Event::msg_received(
      2, make_msg(msg::MsgType::UnlockRequest, 2, 1, 0, fake_payload({}))));
  EXPECT_EQ(count_kind(actions, Action::Kind::Detach), 1);  // never held it
  EXPECT_FALSE(h.core.peer_active(2));
}

// ---- barriers --------------------------------------------------------------

TEST(CoherenceCore, MidEpisodeAttachIsNotAParticipant) {
  CoreHarness h;
  h.attach(1);
  h.attach(2);

  // Rank 1 opens the episode: participants freeze at {master, 1, 2}.
  h.step(Event::msg_received(
      1, make_msg(msg::MsgType::BarrierEnter, 1, 1, 0, fake_payload({}))));
  // Rank 3 attaches mid-episode: it neither blocks the episode nor
  // receives its release.
  h.attach(3);
  h.step(Event::master_barrier(0, {}));
  EXPECT_EQ(h.core.barrier_generation(0), 0u);  // still waiting on rank 2

  auto actions = h.step(Event::msg_received(
      2, make_msg(msg::MsgType::BarrierEnter, 2, 1, 0, fake_payload({}))));
  EXPECT_EQ(h.core.barrier_generation(0), 1u);
  EXPECT_NE(find_send(actions, 1, msg::MsgType::BarrierRelease), nullptr);
  EXPECT_NE(find_send(actions, 2, msg::MsgType::BarrierRelease), nullptr);
  EXPECT_EQ(find_send(actions, 3, msg::MsgType::BarrierRelease), nullptr);
  EXPECT_GE(count_kind(actions, Action::Kind::WakeMaster), 1);
  h.expect_valid_trace();
}

TEST(CoherenceCore, DetachOfLastStragglerReleasesBarrier) {
  CoreHarness h;
  h.attach(1);
  h.attach(2);
  h.step(Event::master_barrier(0, {}));
  h.step(Event::msg_received(
      1, make_msg(msg::MsgType::BarrierEnter, 1, 1, 0, fake_payload({}))));
  EXPECT_EQ(h.core.barrier_generation(0), 0u);

  // Rank 2 crashes instead of entering: the episode completes without it.
  auto actions = h.step(Event::peer_detached(2));
  EXPECT_EQ(h.core.barrier_generation(0), 1u);
  EXPECT_NE(find_send(actions, 1, msg::MsgType::BarrierRelease), nullptr);
  h.expect_valid_trace();
}

// ---- exhaustive small-schedule permutation drivers -------------------------

namespace {

/// Replays a lock/unlock workload under one interleaving: the master and
/// two remotes each do acquire-then-release of mutex 0, with the real
/// request/reply causality (an agent's next step fires only after its
/// previous one was answered).  Agent 0 is the master.
struct LockScheduleSim {
  CoreHarness h{4, 2};
  std::array<int, 3> pc{};       // 0 = acquire next, 1 = release next, 2 = done
  std::array<int, 3> replies{};  // replies seen per remote agent

  LockScheduleSim() {
    h.attach(1);
    h.attach(2);
  }

  void observe(const std::vector<Action>& actions) {
    for (const Action& a : actions) {
      if (a.kind == Action::Kind::Send &&
          (a.message.type == msg::MsgType::LockGrant ||
           a.message.type == msg::MsgType::UnlockAck)) {
        ++replies[a.rank];
      }
    }
  }

  bool enabled(int agent) const {
    if (pc[agent] >= 2) return false;
    if (agent == 0) {
      return pc[0] == 0 || h.core.master_holds(0);
    }
    return pc[agent] == 0 || replies[agent] >= 1;
  }

  void fire(int agent) {
    if (agent == 0) {
      observe(h.step(pc[0] == 0 ? Event::master_lock(0)
                                : Event::master_unlock(0, {})));
    } else {
      const auto rank = static_cast<std::uint32_t>(agent);
      msg::Message m =
          pc[agent] == 0
              ? make_msg(msg::MsgType::LockRequest, rank, 1)
              : make_msg(msg::MsgType::UnlockRequest, rank, 2, 0,
                         fake_payload({}));
      observe(h.step(Event::msg_received(rank, std::move(m))));
    }
    ++pc[agent];
  }

  bool done() const { return pc[0] == 2 && pc[1] == 2 && pc[2] == 2; }
};

void dfs_lock_schedules(std::vector<int>& path, int& schedules) {
  LockScheduleSim sim;
  for (const int agent : path) {
    ASSERT_TRUE(sim.enabled(agent));
    sim.fire(agent);
  }
  bool any = false;
  for (int agent = 0; agent < 3; ++agent) {
    if (!sim.enabled(agent)) continue;
    any = true;
    path.push_back(agent);
    dfs_lock_schedules(path, schedules);
    path.pop_back();
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (any) return;
  // A maximal schedule: nothing more can fire.  The workload must have run
  // to completion (no lost wakeup / stuck queue is representable here as an
  // agent that never became enabled).
  ASSERT_TRUE(sim.done()) << "schedule deadlocked after "
                          << path.size() << " steps";
  EXPECT_EQ(sim.h.core.lock_holder(0), -1);
  EXPECT_EQ(sim.replies[1], 2);
  EXPECT_EQ(sim.replies[2], 2);
  EXPECT_EQ(sim.h.stats.locks, 1u);
  const auto err = dsm::validate_trace(sim.h.log.snapshot());
  ASSERT_FALSE(err.has_value()) << *err;
  ++schedules;
}

}  // namespace

TEST(CoherenceCoreSchedules, AllLockInterleavingsConvergeAndValidate) {
  std::vector<int> path;
  int schedules = 0;
  dfs_lock_schedules(path, schedules);
  // 3 agents × 2 causally-ordered steps: dozens of distinct interleavings,
  // every single one replayed and validated.
  EXPECT_GE(schedules, 20);
}

TEST(CoherenceCoreSchedules, AllBarrierEntryOrdersRelease) {
  std::array<int, 3> order{0, 1, 2};  // 0 = master, 1..2 = remotes
  std::sort(order.begin(), order.end());
  int permutations = 0;
  do {
    CoreHarness h;
    h.attach(1);
    h.attach(2);
    std::vector<Action> last;
    for (const int agent : order) {
      if (agent == 0) {
        last = h.step(Event::master_barrier(0, {}));
      } else {
        const auto rank = static_cast<std::uint32_t>(agent);
        last = h.step(Event::msg_received(
            rank,
            make_msg(msg::MsgType::BarrierEnter, rank, 1, 0, fake_payload({}))));
      }
    }
    // Whatever the entry order, the LAST entry completes the episode and
    // releases exactly the two remotes.
    EXPECT_EQ(h.core.barrier_generation(0), 1u);
    EXPECT_NE(find_send(last, 1, msg::MsgType::BarrierRelease), nullptr);
    EXPECT_NE(find_send(last, 2, msg::MsgType::BarrierRelease), nullptr);
    const auto err = dsm::validate_trace(h.log.snapshot());
    ASSERT_FALSE(err.has_value()) << *err;
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(permutations, 6);
}

// ---- sharded directory: migration at every causally-valid point ------------

namespace {

/// Two home shards, two remotes contending on mutex 0, and a migration
/// agent that hands the region between the shards (docs/SHARDING.md).  The
/// sim models exactly what the sharded shells do around the cores: requests
/// route by the remote's cached map, a request landing at the non-owner is
/// bounced (shell-level — no core interaction) and re-issued at the owner
/// with `aux` = the bounced attempt's seq, and a migration is an
/// export_region at the owner followed by an import_region at the other
/// shard.  The DFS below drives this through every causally-valid
/// interleaving, so the handoff fires with the mutex free, held, held with
/// a queued waiter, and mid-release — and each schedule must converge with
/// every request executed exactly once and both shard logs valid.
struct ShardedLockSim {
  static constexpr int kMigrations = 2;

  std::array<CoreHarness, 2> h;
  int owner = 0;                  // shard currently owning region 0
  int migs = 0;                   // migration steps fired so far
  int bounces = 0;                // stale-map re-issues the sim performed
  std::array<int, 2> pc{};        // per remote: 0 = lock, 1 = unlock, 2 = done
  std::array<int, 2> replies{};   // grant/ack sends observed per remote
  std::array<int, 2> cached{};    // each remote's cached owner shard
  std::array<std::uint32_t, 2> seq{};

  ShardedLockSim() {
    for (CoreHarness& shard : h) {
      shard.attach(1);
      shard.attach(2);
    }
  }

  void observe(CoreHarness& shard, const std::vector<Action>& actions) {
    for (const Action& a : actions) {
      if (a.kind == Action::Kind::Trace) {
        shard.log.append(a.trace.kind, a.trace.rank, a.trace.sync_id,
                         a.trace.blocks, a.trace.bytes, a.trace.req);
      }
      if (a.kind == Action::Kind::Send &&
          (a.message.type == msg::MsgType::LockGrant ||
           a.message.type == msg::MsgType::UnlockAck)) {
        ++replies[a.rank - 1];
      }
    }
  }

  void fire_remote(int i) {
    const auto rank = static_cast<std::uint32_t>(i + 1);
    std::uint32_t aux = 0;
    if (cached[i] != owner) {
      // The stale-routed attempt reaches the old owner's shell and is
      // bounced with WrongShard + the fresh map — the core never sees it.
      // The re-issue below carries the bounced attempt's seq in aux.
      ++bounces;
      aux = ++seq[i];
      cached[i] = owner;
    }
    msg::Message m =
        pc[i] == 0
            ? make_msg(msg::MsgType::LockRequest, rank, ++seq[i])
            : make_msg(msg::MsgType::UnlockRequest, rank, ++seq[i], 0,
                       fake_payload({idx::UpdateRun{}}));
    m.aux = aux;
    // The actions of this step are produced (and observed) at the owner:
    // a waiter's deferred grant rides the unlocking step's action batch.
    std::vector<Action> actions =
        h[owner].core.step(Event::msg_received(rank, std::move(m)));
    observe(h[owner], actions);
    ++pc[i];
  }

  void fire_migration() {
    std::vector<Action> out;
    dsm::CoherenceCore::RegionState st = h[owner].core.export_region(0, out);
    observe(h[owner], out);
    out.clear();
    h[1 - owner].core.import_region(std::move(st), out);
    observe(h[1 - owner], out);
    owner = 1 - owner;
    ++migs;
  }

  // Agents 0..1 are the remotes, agent 2 the migration driver.
  bool enabled(int agent) const {
    if (agent == 2) return migs < kMigrations;
    if (pc[agent] >= 2) return false;
    return pc[agent] == 0 || replies[agent] >= 1;
  }

  void fire(int agent) { agent == 2 ? fire_migration() : fire_remote(agent); }

  bool done() const {
    return pc[0] == 2 && pc[1] == 2 && migs == kMigrations;
  }
};

void dfs_sharded_schedules(std::vector<int>& path, int& schedules) {
  ShardedLockSim sim;
  for (const int agent : path) {
    ASSERT_TRUE(sim.enabled(agent));
    sim.fire(agent);
  }
  bool any = false;
  for (int agent = 0; agent < 3; ++agent) {
    if (!sim.enabled(agent)) continue;
    any = true;
    path.push_back(agent);
    dfs_sharded_schedules(path, schedules);
    path.pop_back();
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (any) return;
  // A maximal schedule: both episodes and both migrations completed, no
  // interleaving may deadlock the handoff.
  ASSERT_TRUE(sim.done()) << "schedule deadlocked after " << path.size()
                          << " steps";
  EXPECT_EQ(sim.replies[0], 2);
  EXPECT_EQ(sim.replies[1], 2);
  EXPECT_EQ(sim.h[0].core.lock_holder(0), -1);
  EXPECT_EQ(sim.h[1].core.lock_holder(0), -1);
  // Each unlock's diffs applied exactly once, whichever shard ended up
  // executing it — never lost to a handoff, never double-applied.
  EXPECT_EQ(sim.h[0].codec.apply_calls + sim.h[1].codec.apply_calls, 2);
  // The importer counts each handoff exactly once.
  EXPECT_EQ(sim.h[0].stats.region_migrations +
                sim.h[1].stats.region_migrations,
            static_cast<std::uint64_t>(ShardedLockSim::kMigrations));
  for (CoreHarness& shard : sim.h) {
    const auto err = dsm::validate_trace(shard.log.snapshot());
    ASSERT_FALSE(err.has_value()) << *err;
  }
  ++schedules;
}

}  // namespace

TEST(CoherenceCoreSchedules, AllShardMigrationInterleavingsConverge) {
  std::vector<int> path;
  int schedules = 0;
  dfs_sharded_schedules(path, schedules);
  // 4 causally-valid remote orders × C(6,2) migration placements: the DFS
  // must reach every one of them.
  EXPECT_EQ(schedules, 60);
}

// ---- object mode: scoped grants + pending travel at every interleaving -----

namespace {

std::vector<idx::UpdateRun> decode_runs(const std::vector<std::byte>& p) {
  std::vector<idx::UpdateRun> runs(p.size() / sizeof(idx::UpdateRun));
  if (!runs.empty()) std::memcpy(runs.data(), p.data(), p.size());
  return runs;
}

/// The object-granularity twin of ShardedLockSim (docs/OBJECTS.md): two
/// shards running scoped-pending cores with mutex 0 bound to row 0 and
/// mutex 1 to row 1 — each row standing for one (class, region) object
/// stripe.  Remote 1 works objects guarded by region 0, remote 2 objects
/// guarded by region 1, and a migration agent hands region 0 between the
/// shards.  The DFS drives every interleaving and each one must keep the
/// strict-entry-consistency bars: a grant ships ONLY its bound row's
/// pending runs (never another region's objects), the initial pending for
/// region 0 is delivered exactly once no matter how many handoffs precede
/// the grant (it travels in RegionState::pending), and every exported
/// pending run belongs to the exported region's bound row.
struct ObjectLockSim {
  static constexpr int kMigrations = 2;

  std::array<CoreHarness, 2> h{CoreHarness{2, 2, /*scoped=*/true},
                               CoreHarness{2, 2, /*scoped=*/true}};
  int owner = 0;                 // shard currently owning region 0
  int migs = 0;
  std::array<int, 2> pc{};       // per remote: 0 = lock, 1 = unlock, 2 = done
  std::array<int, 2> replies{};
  std::array<int, 2> cached{};   // remote 1's cached owner of region 0
  std::array<std::uint32_t, 2> seq{};
  std::vector<idx::UpdateRun> grant0_runs;  // pending delivered on mutex 0

  ObjectLockSim() {
    for (CoreHarness& shard : h) {
      shard.core.bind_lock(0, 0);
      shard.core.bind_lock(1, 1);
    }
    // Scoped initial seeds, as the sharded attach does in object mode:
    // each shard's attach carries only the pending of the rows its
    // regions guard.  Region 0 starts at shard 0, region 1 lives on
    // shard 1 for good.
    for (std::uint32_t rank : {1u, 2u}) {
      h[0].attach(rank, {{0, 0, 4}});
      h[1].attach(rank, {{1, 0, 4}});
    }
  }

  void observe(CoreHarness& shard, const std::vector<Action>& actions) {
    for (const Action& a : actions) {
      if (a.kind == Action::Kind::Trace) {
        shard.log.append(a.trace.kind, a.trace.rank, a.trace.sync_id,
                         a.trace.blocks, a.trace.bytes, a.trace.req);
      }
      if (a.kind != Action::Kind::Send) continue;
      if (a.message.type == msg::MsgType::LockGrant ||
          a.message.type == msg::MsgType::UnlockAck) {
        ++replies[a.rank - 1];
      }
      if (a.message.type == msg::MsgType::LockGrant) {
        // The scoping bar: nothing outside the granted region's bound row
        // may ride the grant, whichever shard issues it.
        for (const idx::UpdateRun& run : decode_runs(a.message.payload)) {
          EXPECT_EQ(run.row, a.message.sync_id)
              << "grant of mutex " << a.message.sync_id
              << " shipped row " << run.row;
          if (a.message.sync_id == 0) grant0_runs.push_back(run);
        }
      }
    }
  }

  void fire_remote(int i) {
    const auto rank = static_cast<std::uint32_t>(i + 1);
    const auto mutex = static_cast<std::uint32_t>(i);
    const int at = i == 0 ? owner : 1;  // region 1 never moves off shard 1
    if (i == 0 && cached[0] != owner) {
      ++seq[0];  // the bounced stale-map attempt burns a seq (WrongShard)
      cached[0] = owner;
    }
    msg::Message m =
        pc[i] == 0
            ? make_msg(msg::MsgType::LockRequest, rank, ++seq[i], mutex)
            : make_msg(msg::MsgType::UnlockRequest, rank, ++seq[i], mutex,
                       fake_payload({{mutex, 0, 2}}));
    observe(h[at], h[at].core.step(Event::msg_received(rank, std::move(m))));
    ++pc[i];
  }

  void fire_migration() {
    std::vector<Action> out;
    dsm::CoherenceCore::RegionState st = h[owner].core.export_region(0, out);
    observe(h[owner], out);
    // Pending travels scoped: every run riding the export belongs to the
    // exported region's bound row.
    for (const auto& [rank, runs] : st.pending) {
      for (const idx::UpdateRun& run : runs) {
        EXPECT_EQ(run.row, 0u) << "export of region 0 carried row "
                               << run.row << " for rank " << rank;
      }
    }
    out.clear();
    h[1 - owner].core.import_region(std::move(st), out);
    observe(h[1 - owner], out);
    owner = 1 - owner;
    ++migs;
  }

  // Agents 0..1 are the remotes, agent 2 the migration driver.
  bool enabled(int agent) const {
    if (agent == 2) return migs < kMigrations;
    if (pc[agent] >= 2) return false;
    return pc[agent] == 0 || replies[agent] >= 1;
  }

  void fire(int agent) { agent == 2 ? fire_migration() : fire_remote(agent); }

  bool done() const {
    return pc[0] == 2 && pc[1] == 2 && migs == kMigrations;
  }
};

void dfs_object_schedules(std::vector<int>& path, int& schedules) {
  ObjectLockSim sim;
  for (const int agent : path) {
    ASSERT_TRUE(sim.enabled(agent));
    sim.fire(agent);
  }
  bool any = false;
  for (int agent = 0; agent < 3; ++agent) {
    if (!sim.enabled(agent)) continue;
    any = true;
    path.push_back(agent);
    dfs_object_schedules(path, schedules);
    path.pop_back();
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (any) return;
  ASSERT_TRUE(sim.done()) << "schedule deadlocked after " << path.size()
                          << " steps";
  EXPECT_EQ(sim.replies[0], 2);
  EXPECT_EQ(sim.replies[1], 2);
  EXPECT_EQ(sim.h[0].core.lock_holder(0), -1);
  EXPECT_EQ(sim.h[1].core.lock_holder(0), -1);
  EXPECT_EQ(sim.h[1].core.lock_holder(1), -1);
  // Remote 1's grant delivered region 0's initial pending exactly once —
  // the run survived every preceding handoff, and no handoff duplicated
  // it.
  ASSERT_EQ(sim.grant0_runs.size(), 1u);
  EXPECT_EQ(sim.grant0_runs[0].row, 0u);
  EXPECT_EQ(sim.grant0_runs[0].first_elem, 0u);
  EXPECT_EQ(sim.grant0_runs[0].count, 4u);
  // Each unlock's runs applied exactly once, at whichever shard executed
  // it.
  EXPECT_EQ(sim.h[0].codec.apply_calls + sim.h[1].codec.apply_calls, 2);
  EXPECT_EQ(sim.h[0].stats.region_migrations +
                sim.h[1].stats.region_migrations,
            static_cast<std::uint64_t>(ObjectLockSim::kMigrations));
  for (CoreHarness& shard : sim.h) {
    const auto err = dsm::validate_trace(shard.log.snapshot());
    ASSERT_FALSE(err.has_value()) << *err;
  }
  ++schedules;
}

}  // namespace

TEST(CoherenceCoreSchedules, AllObjectModeInterleavingsStayScoped) {
  std::vector<int> path;
  int schedules = 0;
  dfs_object_schedules(path, schedules);
  // The two remotes touch disjoint regions, so every merge of the three
  // agents' step sequences (2 + 2 + 2 steps) is causally valid:
  // 6! / (2! 2! 2!) = 90 distinct schedules, each replayed and validated.
  EXPECT_EQ(schedules, 90);
}

// ---- replicated pair: primary crash at every causally-valid step -----------

namespace {

/// A primary/standby core pair under the synchronous log discipline of
/// docs/REPLICATION.md, with the wire modeled as in LockScheduleSim: the
/// master and two remotes acquire/release mutex 0.  Every event the
/// primary steps is replayed on the standby before its replies deliver
/// (log-before-reply); `crash_and_promote` kills the primary at the
/// current step — optionally losing the replies of the very last event,
/// the in-flight window a real crash exposes — resets the dead master's
/// state on the standby, re-delivers each remote's outstanding retransmit,
/// and the workload finishes against the promoted standby.
struct ReplicatedLockSim {
  CoreHarness primary{4, 2};
  CoreHarness standby{4, 2};
  bool crashed = false;
  std::array<int, 3> pc{};       // agent progress: 0 acquire, 1 release, 2 done
  std::array<int, 3> replies{};  // DELIVERED replies per remote agent
  std::array<std::optional<msg::Message>, 3> outstanding;  // unanswered reqs

  ReplicatedLockSim() {
    for (std::uint32_t r : {1u, 2u}) {
      primary.attach(r);
      standby.attach(r);  // the replicated attach events
    }
  }

  CoreHarness& serving() { return crashed ? standby : primary; }

  void deliver(const std::vector<Action>& actions) {
    for (const Action& a : actions) {
      if (a.kind == Action::Kind::Send &&
          (a.message.type == msg::MsgType::LockGrant ||
           a.message.type == msg::MsgType::UnlockAck)) {
        ++replies[a.rank];
        outstanding[a.rank].reset();
      }
    }
  }

  bool enabled(int agent) const {
    if (pc[agent] >= 2) return false;
    if (agent == 0) {
      return pc[0] == 0 ||
             (crashed ? standby.core.master_holds(0)
                      : primary.core.master_holds(0));
    }
    return pc[agent] == 0 || replies[agent] >= 1;
  }

  /// Fire one agent step on the serving core.  Pre-crash, the event also
  /// replays on the standby (the synchronous append); `lose_replies`
  /// models a crash right after the append, before the send flush.
  void fire(int agent, bool lose_replies = false) {
    std::vector<Action> actions;
    if (agent == 0) {
      const Event e = pc[0] == 0 ? Event::master_lock(0)
                                 : Event::master_unlock(0, {});
      actions = serving().step(e);
      if (!crashed) standby.step(e);
    } else {
      const auto rank = static_cast<std::uint32_t>(agent);
      msg::Message m =
          pc[agent] == 0
              ? make_msg(msg::MsgType::LockRequest, rank, 1)
              : make_msg(msg::MsgType::UnlockRequest, rank, 2, 0,
                         fake_payload({{0, 0, 1}}));
      outstanding[agent] = m;
      actions = serving().step(Event::msg_received(rank, msg::Message(m)));
      if (!crashed) {
        standby.step(Event::msg_received(rank, std::move(m)));
      }
    }
    ++pc[agent];
    if (!lose_replies) deliver(actions);
  }

  void crash_and_promote() {
    ASSERT_FALSE(crashed);
    crashed = true;
    // The dead primary's master does not survive: release its lock, drop
    // it from the waiter queue (its state machine restarts from scratch).
    std::vector<Action> actions;
    standby.core.reset_master(actions);
    for (const Action& a : actions) {
      if (a.kind == Action::Kind::Trace) {
        standby.log.append(a.trace.kind, a.trace.rank, a.trace.sync_id,
                           a.trace.blocks, a.trace.bytes, a.trace.req);
      }
    }
    pc[0] = 0;
    // Each remote's retry layer retransmits whatever it never saw answered;
    // the replicated reply cache (or waiter state) must answer each exactly
    // once.
    for (int agent : {1, 2}) {
      if (!outstanding[agent].has_value()) continue;
      const auto rank = static_cast<std::uint32_t>(agent);
      deliver(standby.step(
          Event::msg_received(rank, msg::Message(*outstanding[agent]))));
    }
  }

  bool done() const { return pc[0] == 2 && pc[1] == 2 && pc[2] == 2; }

  /// Drive the remaining steps round-robin on the promoted standby, then
  /// assert the takeover bar: workload complete, mutex free, each unlock's
  /// updates applied exactly once, and a seamless standby trace.
  void finish_and_check() {
    for (int guard = 0; guard < 64 && !done(); ++guard) {
      for (int agent : {1, 2, 0}) {
        if (enabled(agent)) fire(agent);
      }
    }
    ASSERT_TRUE(done()) << "takeover wedged the workload";
    EXPECT_EQ(standby.core.lock_holder(0), -1);
    EXPECT_EQ(replies[1], 2);
    EXPECT_EQ(replies[2], 2);
    // One apply per remote unlock, whether it replayed pre-crash or
    // executed post-promotion; a retransmitted unlock must hit the
    // replicated dedup horizon, never the codec.
    EXPECT_EQ(standby.codec.apply_calls, 2);
    std::map<std::pair<std::uint32_t, std::uint64_t>, int> applied;
    for (const auto& ev : standby.log.snapshot()) {
      if (ev.kind != dsm::TraceEvent::Kind::UpdatesApplied || ev.req == 0) {
        continue;
      }
      const int times = ++applied[std::make_pair(ev.rank, ev.req)];
      EXPECT_EQ(times, 1) << "rank " << ev.rank << " request #" << ev.req
                          << " applied twice across the failover";
    }
    const auto err = dsm::validate_trace(standby.log.snapshot());
    ASSERT_FALSE(err.has_value()) << *err;
  }
};

/// Enumerate every causally-valid interleaving of the workload (the same
/// DFS as dfs_lock_schedules, against the replicated pair, no crash).
void collect_replicated_schedules(std::vector<int>& path,
                                  std::vector<std::vector<int>>& maximal) {
  ReplicatedLockSim sim;
  for (const int agent : path) {
    ASSERT_TRUE(sim.enabled(agent));
    sim.fire(agent);
  }
  bool any = false;
  for (int agent = 0; agent < 3; ++agent) {
    if (!sim.enabled(agent)) continue;
    any = true;
    path.push_back(agent);
    collect_replicated_schedules(path, maximal);
    path.pop_back();
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (!any) maximal.push_back(path);
}

}  // namespace

TEST(CoherenceCoreSchedules, PrimaryCrashAtEveryStepFailsOverExactlyOnce) {
  std::vector<int> path;
  std::vector<std::vector<int>> schedules;
  collect_replicated_schedules(path, schedules);
  ASSERT_GE(schedules.size(), 20u);

  int runs = 0;
  for (const std::vector<int>& schedule : schedules) {
    for (std::size_t crash_at = 0; crash_at <= schedule.size(); ++crash_at) {
      // lost = the crash window between the append and the send flush: the
      // last event IS in the standby's log but its replies never left.
      for (const bool lost : {false, true}) {
        ReplicatedLockSim sim;
        for (std::size_t i = 0; i < crash_at; ++i) {
          ASSERT_TRUE(sim.enabled(schedule[i]));
          sim.fire(schedule[i], lost && i + 1 == crash_at);
        }
        sim.crash_and_promote();
        sim.finish_and_check();
        if (::testing::Test::HasFatalFailure()) return;
        ++runs;
      }
    }
  }
  EXPECT_GE(runs, 250);
}

// ---- recovery-window bound (the granted_gen growth fix) --------------------

TEST(CoherenceCoreStress, RecoveryWindowsNeverOutgrowTheMutexCount) {
  constexpr std::uint32_t kLocks = 32;
  constexpr std::uint32_t kPeers = 4;
  CoreHarness h(kLocks, 2);
  for (std::uint32_t r = 1; r <= kPeers; ++r) h.attach(r);

  std::mt19937 rng(0x5eed);
  std::array<std::int64_t, kLocks> holder;
  holder.fill(-1);
  std::array<std::uint32_t, kPeers + 1> seq{};
  std::array<std::int32_t, kPeers + 1> held;
  held.fill(-1);

  const auto total_windows = [&] {
    std::size_t sum = 0;
    for (std::uint32_t r = 1; r <= kPeers; ++r) {
      sum += h.core.recovery_entries(r);
    }
    return sum;
  };

  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint32_t r = 1 + rng() % kPeers;
    if (held[r] >= 0) {
      const auto m = static_cast<std::uint32_t>(held[r]);
      if (rng() % 5 == 0) {
        // Crash while holding: the home reclaims, the recovery window for
        // the lost unlock stays open until someone regrants the mutex.
        h.step(Event::peer_detached(r));
        h.attach(r);
      } else {
        h.step(Event::msg_received(
            r, make_msg(msg::MsgType::UnlockRequest, r, ++seq[r], m,
                        fake_payload({}))));
      }
      holder[m] = -1;
      held[r] = -1;
    } else {
      const std::uint32_t m = rng() % kLocks;
      if (holder[m] != -1) continue;  // keep requests conflict-free
      h.step(Event::msg_received(
          r, make_msg(msg::MsgType::LockRequest, r, ++seq[r], m)));
      holder[m] = r;
      held[r] = static_cast<std::int32_t>(m);
    }
    // The invariant the fix establishes: per mutex, at most ONE rank holds
    // an open recovery window (the last grantee), so the total can never
    // exceed the mutex count — no matter how many crash/regrant cycles run.
    ASSERT_LE(total_windows(), kLocks) << "at iteration " << iter;
    for (std::uint32_t p = 1; p <= kPeers; ++p) {
      ASSERT_LE(h.core.recovery_entries(p), kLocks);
    }
  }
  const auto err = dsm::validate_trace(h.log.snapshot());
  ASSERT_FALSE(err.has_value()) << *err;
}
