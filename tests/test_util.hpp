// Shared helpers for property-style tests: random TypeDesc generation and
// random typed-image filling.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "platform/float_codec.hpp"
#include "platform/int_codec.hpp"
#include "tags/layout.hpp"
#include "tags/type_desc.hpp"

namespace hdsm::test {

/// A random TypeDesc of bounded depth/size: scalars, pointers, arrays,
/// nested structs, reserved slots.
inline tags::TypePtr random_type(std::mt19937_64& rng, int depth = 0) {
  using tags::TypeDesc;
  const plat::ScalarKind kinds[] = {
      plat::ScalarKind::Char,   plat::ScalarKind::UChar,
      plat::ScalarKind::Short,  plat::ScalarKind::UShort,
      plat::ScalarKind::Int,    plat::ScalarKind::UInt,
      plat::ScalarKind::Long,   plat::ScalarKind::ULong,
      plat::ScalarKind::LongLong, plat::ScalarKind::ULongLong,
      plat::ScalarKind::Float,  plat::ScalarKind::Double,
      plat::ScalarKind::LongDouble};
  const auto pick = [&rng](std::uint64_t n) {
    return static_cast<std::size_t>(rng() % n);
  };
  const std::size_t choice = depth >= 3 ? pick(3) : pick(6);
  switch (choice) {
    case 0:
    case 1:
      return TypeDesc::scalar(kinds[pick(std::size(kinds))]);
    case 2:
      return TypeDesc::pointer();
    case 3:
      return TypeDesc::array(
          TypeDesc::scalar(kinds[pick(std::size(kinds))]), 1 + pick(17));
    case 4: {
      std::vector<tags::Field> fields;
      const std::size_t n = 1 + pick(5);
      for (std::size_t i = 0; i < n; ++i) {
        fields.push_back({"f" + std::to_string(i), random_type(rng, depth + 1)});
      }
      return TypeDesc::struct_of("S", std::move(fields));
    }
    default:
      return TypeDesc::array(random_type(rng, depth + 1), 1 + pick(4));
  }
}

/// Fill an image's data runs with deterministic pseudo-random values in
/// the layout's platform representation (padding left zero).
inline void fill_random_image(std::byte* image, const tags::Layout& layout,
                              std::mt19937_64& rng) {
  for (const tags::FlatRun& run : layout.runs) {
    if (run.cat == tags::FlatRun::Cat::Padding) continue;
    for (std::uint64_t i = 0; i < run.count; ++i) {
      std::byte* p = image + run.offset + i * run.elem_size;
      switch (run.cat) {
        case tags::FlatRun::Cat::Float: {
          // Values exactly representable everywhere: small integers / 16.
          const double v =
              static_cast<double>(static_cast<std::int32_t>(rng() % 4096) -
                                  2048) /
              16.0;
          plat::encode_float(v, p, run.elem_size, layout.platform->endian,
                             run.kind == plat::ScalarKind::LongDouble
                                 ? layout.platform->long_double_format
                                 : plat::LongDoubleFormat::Binary64);
          break;
        }
        case tags::FlatRun::Cat::Pointer:
          // Tokens: small offsets.
          plat::write_uint(p, run.elem_size, layout.platform->endian,
                           rng() % 65536);
          break;
        case tags::FlatRun::Cat::SignedInt: {
          // Stay within the smallest width any platform might use (1 byte).
          plat::write_sint(p, run.elem_size, layout.platform->endian,
                           static_cast<std::int64_t>(rng() % 200) - 100);
          break;
        }
        case tags::FlatRun::Cat::UnsignedInt:
          plat::write_uint(p, run.elem_size, layout.platform->endian,
                           rng() % 200);
          break;
        case tags::FlatRun::Cat::Padding:
          break;
      }
    }
  }
}

}  // namespace hdsm::test
