// Tests for the message layer: frame codec, in-process channels, and the
// loopback TCP transport.
#include <gtest/gtest.h>

#include <thread>

#include "msg/endpoint.hpp"
#include "msg/message.hpp"
#include "msg/tcp.hpp"

namespace msg = hdsm::msg;
namespace plat = hdsm::plat;

namespace {

msg::Message sample_message() {
  msg::Message m;
  m.type = msg::MsgType::UnlockRequest;
  m.sync_id = 3;
  m.rank = 7;
  m.seq = 42;
  m.sender.endian = plat::Endian::Big;
  m.sender.long_double_format = plat::LongDoubleFormat::Binary128;
  m.tag = "(4,56169)";
  m.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  return m;
}

void expect_equal(const msg::Message& a, const msg::Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.sync_id, b.sync_id);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.sender.endian, b.sender.endian);
  EXPECT_EQ(a.sender.long_double_format, b.sender.long_double_format);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.payload, b.payload);
}

}  // namespace

TEST(Framing, RoundTrip) {
  const msg::Message m = sample_message();
  const std::vector<std::byte> frame = msg::encode_frame(m);
  EXPECT_EQ(frame.size(), m.wire_size());
  msg::FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  msg::Message out;
  ASSERT_TRUE(dec.next(out));
  expect_equal(m, out);
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, ByteAtATimeFeeding) {
  const msg::Message m = sample_message();
  const std::vector<std::byte> frame = msg::encode_frame(m);
  msg::FrameDecoder dec;
  msg::Message out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.feed(&frame[i], 1);
    ASSERT_FALSE(dec.next(out)) << "complete too early at byte " << i;
  }
  dec.feed(&frame[frame.size() - 1], 1);
  ASSERT_TRUE(dec.next(out));
  expect_equal(m, out);
}

TEST(Framing, MultipleMessagesInOneBuffer) {
  msg::Message a = sample_message();
  msg::Message b = sample_message();
  b.type = msg::MsgType::LockGrant;
  b.payload.clear();
  std::vector<std::byte> buf = msg::encode_frame(a);
  const std::vector<std::byte> fb = msg::encode_frame(b);
  buf.insert(buf.end(), fb.begin(), fb.end());
  msg::FrameDecoder dec;
  dec.feed(buf.data(), buf.size());
  msg::Message out;
  ASSERT_TRUE(dec.next(out));
  expect_equal(a, out);
  ASSERT_TRUE(dec.next(out));
  expect_equal(b, out);
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, BadMagicRejected) {
  std::vector<std::byte> junk(64, std::byte{0x5A});
  msg::FrameDecoder dec;
  dec.feed(junk.data(), junk.size());
  msg::Message out;
  EXPECT_THROW(dec.next(out), std::runtime_error);
}

TEST(Framing, BadTypeRejected) {
  msg::Message m = sample_message();
  std::vector<std::byte> frame = msg::encode_frame(m);
  frame[4] = std::byte{200};  // type field
  msg::FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  msg::Message out;
  EXPECT_THROW(dec.next(out), std::runtime_error);
}

TEST(Framing, EmptyTagAndPayload) {
  msg::Message m;
  m.type = msg::MsgType::JoinAck;
  const std::vector<std::byte> frame = msg::encode_frame(m);
  msg::FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  msg::Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_TRUE(out.tag.empty());
  EXPECT_TRUE(out.payload.empty());
}

TEST(Framing, LargePayload) {
  msg::Message m = sample_message();
  m.payload.assign(1 << 20, std::byte{0x77});
  const std::vector<std::byte> frame = msg::encode_frame(m);
  msg::FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  msg::Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.payload.size(), std::size_t{1 << 20});
  EXPECT_EQ(out.payload, m.payload);
}

// ---- channels ---------------------------------------------------------------

TEST(Channel, PingPong) {
  auto [a, b] = msg::make_channel_pair();
  a->send(sample_message());
  const msg::Message m = b->recv();
  expect_equal(sample_message(), m);
  msg::Message reply;
  reply.type = msg::MsgType::UnlockAck;
  b->send(reply);
  EXPECT_EQ(a->recv().type, msg::MsgType::UnlockAck);
}

TEST(Channel, FifoOrder) {
  auto [a, b] = msg::make_channel_pair();
  for (std::uint32_t i = 0; i < 100; ++i) {
    msg::Message m;
    m.type = msg::MsgType::Hello;
    m.sync_id = i;
    a->send(m);
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(b->recv().sync_id, i);
  }
}

TEST(Channel, RecvForTimesOut) {
  auto [a, b] = msg::make_channel_pair();
  msg::Message out;
  EXPECT_FALSE(b->recv_for(out, std::chrono::milliseconds(20)));
  a->send(sample_message());
  EXPECT_TRUE(b->recv_for(out, std::chrono::milliseconds(1000)));
}

TEST(Channel, CloseUnblocksPeer) {
  auto [a, b] = msg::make_channel_pair();
  std::thread t([ep = b.get()] {
    EXPECT_THROW(ep->recv(), msg::ChannelClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  a->close();
  t.join();
  EXPECT_THROW(a->send(sample_message()), msg::ChannelClosed);
}

TEST(Channel, ByteCountersAdvance) {
  auto [a, b] = msg::make_channel_pair();
  a->send(sample_message());
  b->recv();
  EXPECT_GT(a->bytes_sent(), 0u);
  EXPECT_EQ(a->bytes_sent(), b->bytes_received());
}

TEST(Channel, CrossThreadTraffic) {
  auto [a, b] = msg::make_channel_pair();
  constexpr int kCount = 500;
  std::thread producer([ep = a.get()] {
    for (int i = 0; i < kCount; ++i) {
      msg::Message m;
      m.type = msg::MsgType::Hello;
      m.sync_id = static_cast<std::uint32_t>(i);
      ep->send(m);
    }
  });
  int received = 0;
  while (received < kCount) {
    EXPECT_EQ(b->recv().sync_id, static_cast<std::uint32_t>(received));
    ++received;
  }
  producer.join();
}

// ---- TCP --------------------------------------------------------------------

TEST(Tcp, LoopbackRoundTrip) {
  msg::TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);
  msg::EndpointPtr client_ep;
  std::thread client([&] { client_ep = msg::tcp_connect(listener.port()); });
  msg::EndpointPtr server_ep = listener.accept();
  client.join();

  client_ep->send(sample_message());
  expect_equal(sample_message(), server_ep->recv());

  msg::Message big = sample_message();
  big.payload.assign(300000, std::byte{0x42});
  server_ep->send(big);
  const msg::Message got = client_ep->recv();
  EXPECT_EQ(got.payload.size(), big.payload.size());
  EXPECT_EQ(got.payload, big.payload);
}

TEST(Tcp, RecvForTimeoutAndClose) {
  msg::TcpListener listener(0);
  msg::EndpointPtr client_ep;
  std::thread client([&] { client_ep = msg::tcp_connect(listener.port()); });
  msg::EndpointPtr server_ep = listener.accept();
  client.join();

  msg::Message out;
  EXPECT_FALSE(server_ep->recv_for(out, std::chrono::milliseconds(30)));
  client_ep->close();
  EXPECT_THROW(server_ep->recv(), msg::ChannelClosed);
}
