// Tests for shared arenas: array-of-struct fields addressed per slot,
// portable pointer tokens, allocation state that rides the DSM, and a
// linked list built by a big-endian node and traversed by a little-endian
// one.
#include <gtest/gtest.h>

#include <thread>

#include "dsm/arena.hpp"
#include "dsm/home.hpp"
#include "dsm/remote.hpp"
#include "tags/describe.hpp"

namespace dsm = hdsm::dsm;
namespace tags = hdsm::tags;
namespace plat = hdsm::plat;
using tags::TypeDesc;

namespace {

constexpr std::uint64_t kSlots = 16;

tags::TypePtr node_type() {
  return tags::describe_struct("node")
      .field<int>("value")
      .field<double>("weight")
      .pointer("next")  // slot token
      .build();
}

tags::TypePtr arena_gthv() {
  return tags::describe_struct("G")
      .pointer("head")  // token of the list head
      .nested("pool", TypeDesc::array(node_type(), kSlots))
      .array<int>("pool_used", kSlots)
      .build();
}

}  // namespace

TEST(ArenaView, SlotMemberAccessBothPlatforms) {
  for (const plat::PlatformDesc* p :
       {&plat::linux_ia32(), &plat::solaris_sparc64()}) {
    dsm::GlobalSpace g(arena_gthv(), *p);
    dsm::ArenaView pool(g, "pool");
    EXPECT_EQ(pool.slots(), kSlots);
    pool.set<std::int32_t>(3, "value", -77);
    pool.set<double>(3, "weight", 2.25);
    pool.set<std::uint64_t>(3, "next", dsm::arena_token(5));
    EXPECT_EQ(pool.get<std::int32_t>(3, "value"), -77) << p->name;
    EXPECT_EQ(pool.get<double>(3, "weight"), 2.25) << p->name;
    EXPECT_EQ(pool.get<std::uint64_t>(3, "next"), dsm::arena_token(5));
    // Other slots untouched.
    EXPECT_EQ(pool.get<std::int32_t>(4, "value"), 0);
  }
}

TEST(ArenaView, RejectsBadShapesAndBounds) {
  dsm::GlobalSpace g(arena_gthv(), plat::linux_ia32());
  EXPECT_THROW(dsm::ArenaView(g, "head"), std::invalid_argument);
  EXPECT_THROW(dsm::ArenaView(g, "nope"), std::out_of_range);
  dsm::ArenaView pool(g, "pool");
  EXPECT_THROW(pool.get<std::int32_t>(kSlots, "value"), std::out_of_range);
  EXPECT_THROW(pool.get<std::int32_t>(0, "ghost"), std::out_of_range);
}

TEST(ArenaAllocator, AllocateFreeCycle) {
  dsm::GlobalSpace g(arena_gthv(), plat::linux_ia32());
  dsm::ArenaAllocator alloc(g, "pool_used");
  EXPECT_EQ(alloc.capacity(), kSlots);
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t i = 0; i < kSlots; ++i) {
    const std::uint64_t t = alloc.allocate();
    ASSERT_NE(t, dsm::kArenaNull);
    tokens.push_back(t);
  }
  EXPECT_EQ(alloc.used(), kSlots);
  EXPECT_EQ(alloc.allocate(), dsm::kArenaNull);  // full
  alloc.deallocate(tokens[7]);
  EXPECT_TRUE(alloc.allocate() == tokens[7]);  // slot reused
  EXPECT_THROW(alloc.deallocate(dsm::kArenaNull), std::logic_error);
  alloc.deallocate(tokens[3]);
  EXPECT_THROW(alloc.deallocate(tokens[3]), std::logic_error);
  EXPECT_FALSE(alloc.in_use(tokens[3]));
}

TEST(Arena, LinkedListCrossesHeterogeneityBoundary) {
  // A big-endian remote builds the list 30 -> 20 -> 10 in the shared
  // arena; the little-endian home traverses it after the sync.
  dsm::HomeNode home(arena_gthv(), plat::linux_ia32());
  dsm::RemoteThread remote(arena_gthv(), plat::solaris_sparc32(), 1,
                           home.attach(1));
  home.start();

  std::thread builder([&] {
    remote.lock(0);
    dsm::ArenaView pool(remote.space(), "pool");
    dsm::ArenaAllocator alloc(remote.space(), "pool_used");
    std::uint64_t head = dsm::kArenaNull;
    for (int v = 10; v <= 30; v += 10) {
      const std::uint64_t t = alloc.allocate();
      ASSERT_NE(t, dsm::kArenaNull);
      pool.set<std::int32_t>(dsm::arena_slot(t), "value", v);
      pool.set<double>(dsm::arena_slot(t), "weight", v / 4.0);
      pool.set<std::uint64_t>(dsm::arena_slot(t), "next", head);
      head = t;
    }
    remote.space().view<std::uint64_t>("head").set(head);
    remote.unlock(0);
    remote.join();
  });
  builder.join();
  home.wait_all_joined();

  dsm::ArenaView pool(home.space(), "pool");
  dsm::ArenaAllocator alloc(home.space(), "pool_used");
  EXPECT_EQ(alloc.used(), 3u);

  std::vector<std::int32_t> values;
  std::vector<double> weights;
  std::uint64_t cursor = home.space().view<std::uint64_t>("head").get();
  while (cursor != dsm::kArenaNull) {
    const std::uint64_t slot = dsm::arena_slot(cursor);
    values.push_back(pool.get<std::int32_t>(slot, "value"));
    weights.push_back(pool.get<double>(slot, "weight"));
    cursor = pool.get<std::uint64_t>(slot, "next");
  }
  EXPECT_EQ(values, (std::vector<std::int32_t>{30, 20, 10}));
  EXPECT_EQ(weights, (std::vector<double>{7.5, 5.0, 2.5}));
  home.stop();
}

TEST(Arena, AllocatorStateMigratesWithTheData) {
  // The home allocates; a late-joining node must see the same occupancy
  // and continue allocating without collisions.
  dsm::HomeNode home(arena_gthv(), plat::linux_ia32());
  home.start();
  home.lock(0);
  dsm::ArenaAllocator halloc(home.space(), "pool_used");
  dsm::ArenaView hpool(home.space(), "pool");
  const std::uint64_t a = halloc.allocate();
  const std::uint64_t b = halloc.allocate();
  hpool.set<std::int32_t>(dsm::arena_slot(a), "value", 1);
  hpool.set<std::int32_t>(dsm::arena_slot(b), "value", 2);
  home.unlock(0);

  dsm::RemoteThread late(arena_gthv(), plat::windows_x64(), 4,
                         home.attach(4));
  std::thread joiner([&] {
    late.lock(0);
    dsm::ArenaAllocator ralloc(late.space(), "pool_used");
    EXPECT_EQ(ralloc.used(), 2u);
    const std::uint64_t c = ralloc.allocate();
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);
    dsm::ArenaView rpool(late.space(), "pool");
    rpool.set<std::int32_t>(dsm::arena_slot(c), "value", 3);
    late.unlock(0);
    late.join();
  });
  joiner.join();
  home.wait_all_joined();
  EXPECT_EQ(dsm::ArenaAllocator(home.space(), "pool_used").used(), 3u);
  home.stop();
}
